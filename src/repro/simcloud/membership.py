"""Elastic cluster membership: versioned ring epochs with live rebalance.

The paper's H2 protocol assumes a static nine-server rack; a
production-scale deployment (ROADMAP item 2) must grow and shrink
without downtime or data loss.  :class:`ClusterMembership` is the
controller that takes a :class:`~repro.simcloud.cluster.SwiftCluster`
through **versioned ring epochs**:

* :meth:`add_node` -- scale out (optionally weighted);
* :meth:`drain_node` -- graceful decommission: the node leaves the
  ring immediately but keeps serving its replicas until every one has
  been handed off, then leaves the cluster;
* :meth:`remove_node` -- crash-style departure: the node and its data
  vanish at once, and the survivors re-replicate from the remaining
  copies.

Each call opens a **migration window** (one at a time -- a second
transition while one is open raises
:class:`~repro.simcloud.errors.MembershipError`).  The window freezes a
copy of the old ring, bumps the epoch, and computes a *move-minimal
transition plan*: only the object names whose replica set actually
differs between the two epochs are scheduled to move, which by the
consistent-hashing construction is the
:meth:`~repro.simcloud.hashring.HashRing.moved_fraction`-sized sliver
adjacent to the changed tokens, not the whole key space.

While the window is open the system stays live under **dual
ownership**:

* reads consult the new owners first, then fall back to old owners not
  yet released (verified replicas preferred, exactly like steady
  state) -- counted as ``dual_reads``;
* writes target the new owners (quorum is judged against them) and
  **write through** to the old owners, so a read served by either
  epoch observes acknowledged data -- counted as ``write_throughs``;
* repair and scrub sweep the union, so verify-quarantine-repair and
  the circuit breakers keep working mid-rebalance.

:class:`RebalanceSweeper` drains the plan in bounded batches on the
simulated clock (background-accounted, like repair).  It tolerates
faults: a copy that fails -- target down, injected transient error,
no verified source replica reachable -- simply stays pending and is
retried on a later batch.  When the plan drains, :meth:`finalize`
drops the replicas the old epoch no longer owns, retires a drained
node, and records the handoff latency.

The deterministic-simulation oracle V7 checks the end state: after
quiesce no object is lost, unreadable, or held by a node outside its
current replica set (double-owned).  See docs/MEMBERSHIP.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import MembershipError, SimCloudError
from .hashring import HashRing
from .integrity import verify_record
from .node import ObjectRecord, StorageNode


@dataclass
class TransitionPlan:
    """One epoch transition's outstanding work.

    ``pending`` maps each object name whose replica set changed to its
    frozen (old owners, new owners) pair.  Names are removed as the
    sweeper hands them off; the window closes when the map drains.
    """

    kind: str  # "add" | "drain" | "remove"
    node_id: int
    epoch_from: int
    epoch_to: int
    opened_us: int
    pending: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = field(
        default_factory=dict
    )

    def describe(self) -> str:
        return (
            f"{self.kind} node {self.node_id}: epoch "
            f"{self.epoch_from}->{self.epoch_to}, "
            f"{len(self.pending)} partitions pending"
        )


class ClusterMembership:
    """Epoch-versioned membership controller for one simulated cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.epoch = 1
        self.plan: TransitionPlan | None = None
        self.old_ring: HashRing | None = None
        self.draining: int | None = None  # node id leaving gracefully
        self.sweeper = RebalanceSweeper(self)
        # Plain-int accounting (never touches the clock: digest-safe).
        self.transitions = 0
        self.partitions_moved = 0
        self.bytes_migrated = 0
        self.dual_reads = 0
        self.write_throughs = 0
        self.handoff_us: list[int] = []  # window-open -> finalize, per epoch

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def store(self):
        return self.cluster.store

    @property
    def in_transition(self) -> bool:
        return self.plan is not None

    @property
    def pending_moves(self) -> int:
        return len(self.plan.pending) if self.plan else 0

    def old_owners_for(self, name: str) -> tuple[int, ...]:
        """The previous epoch's replica set, pruned to surviving nodes."""
        if self.old_ring is None:
            return ()
        return tuple(
            nid
            for nid in self.old_ring.nodes_for(name)
            if nid in self.store.nodes
        )

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def add_node(self, weight: float = 1.0) -> StorageNode:
        """Scale out by one (optionally weighted) node, live.

        The node joins the ring immediately; it owns its share of the
        key space from this moment, and the open migration window backs
        every read with the old owners until its replicas arrive.
        """
        self._require_idle()
        cluster = self.cluster
        node_id = max(cluster.nodes) + 1 if cluster.nodes else 1
        node = StorageNode(
            node_id,
            latency=cluster.latency,
            capacity_bytes=cluster.config.node_capacity_bytes,
        )
        node.fault_plan = cluster.fault_plan
        old = cluster.ring.copy()
        cluster.nodes[node_id] = node
        cluster.ring.add_node(node_id, weight=weight)
        self._open_window("add", node_id, old)
        return node

    def drain_node(self, node_id: int) -> None:
        """Gracefully decommission ``node_id``.

        The node leaves the ring now (no new data lands on it except
        write-through) but keeps serving the replicas it holds until
        the sweeper has re-homed every one; :meth:`finalize` then
        retires it from the cluster.
        """
        self._require_idle()
        self._require_departable(node_id)
        old = self.cluster.ring.copy()
        self.cluster.ring.remove_node(node_id)
        self.draining = node_id
        self._open_window("drain", node_id, old)

    def remove_node(self, node_id: int) -> None:
        """Crash-style departure: node and its replicas vanish at once.

        Models pulling a dead server out of the rack.  Every object it
        held is now under-replicated; the migration window re-replicates
        from the surviving copies (a later repair sweep can also heal
        stragglers whose sources were temporarily unreachable).
        """
        self._require_idle()
        self._require_departable(node_id)
        old = self.cluster.ring.copy()
        self.cluster.ring.remove_node(node_id)
        self._retire(node_id)
        self._open_window("remove", node_id, old)

    def _require_idle(self) -> None:
        if self.plan is not None:
            raise MembershipError(
                f"transition in progress ({self.plan.describe()})"
            )

    def _require_departable(self, node_id: int) -> None:
        if node_id not in self.cluster.nodes:
            raise MembershipError(f"unknown node {node_id}")
        if len(self.cluster.ring) <= 1:
            raise MembershipError("cannot remove the last ring node")

    def _open_window(self, kind: str, node_id: int, old: HashRing) -> None:
        store = self.store
        self.old_ring = old
        ring = self.cluster.ring
        pending: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        for name in store.names():
            old_owners = tuple(old.nodes_for(name))
            new_owners = tuple(ring.nodes_for(name))
            if set(old_owners) != set(new_owners):
                pending[name] = (old_owners, new_owners)
        self.plan = TransitionPlan(
            kind=kind,
            node_id=node_id,
            epoch_from=self.epoch,
            epoch_to=self.epoch + 1,
            opened_us=store.clock.now_us,
            pending=pending,
        )
        self.epoch += 1
        self.transitions += 1
        tracer = store.tracer
        if not tracer.noop:
            tracer.event(
                "membership.transition",
                tags={
                    "kind": kind,
                    "node": node_id,
                    "epoch": self.epoch,
                    "pending": len(pending),
                },
            )

    def _retire(self, node_id: int) -> None:
        """Remove every trace of a departed node from the cluster."""
        self.cluster.nodes.pop(node_id, None)
        self.store.breakers.pop(node_id, None)
        self.cluster.failures.discard_node(node_id)

    # ------------------------------------------------------------------
    # window completion
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close a fully migrated window: drop old copies, retire drains.

        Only callable once the plan has drained; the sweeper calls it
        automatically.  The release pass is maintenance (fault-free,
        background-accounted), mirroring
        :meth:`~repro.simcloud.object_store.ObjectStore.rebalance`.
        """
        plan = self.plan
        if plan is None:
            return
        if plan.pending:
            raise MembershipError(
                f"cannot finalize: {len(plan.pending)} partitions pending"
            )
        store = self.store
        self.release_stray_replicas()
        if self.draining is not None:
            self._retire(self.draining)
            self.draining = None
        self.handoff_us.append(store.clock.now_us - plan.opened_us)
        tracer = store.tracer
        if not tracer.noop:
            tracer.event(
                "membership.handoff",
                tags={
                    "kind": plan.kind,
                    "node": plan.node_id,
                    "epoch": plan.epoch_to,
                    "latency_us": self.handoff_us[-1],
                },
            )
        self.plan = None
        self.old_ring = None

    def release_stray_replicas(self) -> int:
        """Drop replicas held by nodes outside the current replica set.

        Covers both the just-migrated old owners and any node that a
        crash/recover cycle left holding data it no longer owns.  Skips
        down nodes (their strays are caught on a later pass or at
        quiesce, once they recover) and nodes holding hinted copies --
        a parked sloppy-quorum payload may be the only replica of an
        acked write until its hint drains home, so it is never a stray.
        Returns how many were dropped.
        """
        store = self.store
        dropped = 0
        with store._suspended_faults():
            for name in sorted(store.names()):
                responsible = set(store.ring.nodes_for(name))
                if store.hints is not None:
                    responsible.update(store.hints.holders_for(name))
                for node_id, node in store.nodes.items():
                    if node_id in responsible or node.is_down:
                        continue
                    if node.peek(name) is not None:
                        store.ledger.background_us += node.delete(name)
                        dropped += 1
        return dropped

    def quiesce(self, max_rounds: int = 10_000) -> None:
        """Drive any open window to completion (DST quiesce hook).

        Runs the sweeper with fault injection suspended until the plan
        drains and finalizes, then drops stray replicas left by windows
        that finalized while some node was down.  Deterministic: by the
        time the harness quiesces, every node is up and storms are
        closed, so each round makes progress.
        """
        store = self.store
        with store._suspended_faults():
            rounds = 0
            while self.plan is not None:
                rounds += 1
                if rounds > max_rounds:
                    raise MembershipError(
                        f"quiesce stuck: {self.plan.describe()}"
                    )
                self.sweeper.step()
            self.release_stray_replicas()


class RebalanceSweeper:
    """Migrates a transition plan's partitions in bounded batches.

    The elastic-membership counterpart of
    :class:`~repro.simcloud.repair.RepairSweeper`: disk time lands in
    ``ledger.background_us``, never on the foreground clock.  Unlike
    repair it runs *with* fault injection live -- mid-rebalance faults
    are exactly the scenario under test -- and simply leaves a
    partition pending when its copy fails, retrying on a later batch.
    """

    def __init__(self, membership: ClusterMembership):
        self.membership = membership

    def step(self, max_objects: int = 64) -> int:
        """Migrate up to ``max_objects`` pending partitions.

        Returns how many were handed off this batch.  Automatically
        finalizes the window when the plan drains.
        """
        m = self.membership
        plan = m.plan
        if plan is None:
            return 0
        store = m.store
        moved = 0
        for name in sorted(plan.pending):
            if moved >= max_objects:
                break
            if name not in store.names():
                # Deleted mid-window: nothing left to hand off.
                del plan.pending[name]
                continue
            if self._migrate(name, *plan.pending[name]):
                del plan.pending[name]
                moved += 1
                m.partitions_moved += 1
        if not plan.pending:
            m.finalize()
        return moved

    def _migrate(
        self,
        name: str,
        old_owners: tuple[int, ...],
        new_owners: tuple[int, ...],
    ) -> bool:
        """Copy ``name``'s newest verified replica to its new owners.

        True when every reachable new owner holds the newest version
        (the partition is handed off); False leaves it pending.
        """
        m = self.membership
        store = m.store
        source = self._newest_verified(name, old_owners, new_owners)
        if source is None:
            return False  # all holders down or rotten; retry later
        done = True
        for node_id in new_owners:
            node = store.nodes.get(node_id)
            if node is None:
                continue
            record = node.peek(name)
            if (
                record is not None
                and record.timestamp >= source.timestamp
                and verify_record(record)
            ):
                continue
            if node.is_down:
                done = False  # can't place this copy yet
                continue
            try:
                cost = node.write(source)
            except SimCloudError:
                done = False  # injected fault: stays pending
                continue
            store.ledger.background_us += cost
            m.bytes_migrated += source.size
            store._unquarantine(name, node_id)
            tracer = store.tracer
            if not tracer.noop:
                tracer.event(
                    "membership.rebalance",
                    tags={"object": name, "store_node": node_id},
                )
        return done

    def _newest_verified(
        self,
        name: str,
        old_owners: tuple[int, ...],
        new_owners: tuple[int, ...],
    ) -> ObjectRecord | None:
        """Newest checksum-verified replica among both epochs' holders.

        Migration must not fan corruption out, so an unverified replica
        is never a source -- the partition waits for repair/scrub (or a
        recovering holder) to produce a clean copy.
        """
        store = self.membership.store
        source = None
        seen: set[int] = set()
        for node_id in (*new_owners, *old_owners):
            if node_id in seen:
                continue
            seen.add(node_id)
            node = store.nodes.get(node_id)
            if node is None or node.is_down:
                continue
            record = node.peek(name)
            if record is None or not verify_record(record):
                continue
            if source is None or record.timestamp > source.timestamp:
                source = record
        return source
