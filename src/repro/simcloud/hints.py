"""Hinted handoff: sloppy-quorum durability while replicas are unreachable.

When a PUT finds a replica owner unreachable -- crashed, breaker-open,
or partitioned away from the writing middleware -- the store can still
acknowledge the write without giving up on durability: the payload
lands on a reachable *fallback* node (the next distinct node clockwise
on the ring past the owner set, Dynamo's sloppy-quorum preference
list) together with a durable **hint** naming the home replica that
missed it.  The fallback stores the object under its real name, so
mid-partition reads can be served from it and every existing integrity
mechanism (verified reads, scrub, repair) applies unchanged.

:class:`HintDeliverySweeper` drains hints home -- on partition heal
(hooked via ``PartitionPlan.on_heal``), at DST quiesce, or whenever an
operator asks.  Delivery is integrity-verified: a fallback payload
that fails checksum verification is **never** delivered (the home is
healed by the ordinary repair path from other replicas instead).
Hints are epoch-tagged so a membership transition that retires or
demotes the home between write and drain re-routes delivery to the
object's *current* owners rather than resurrecting data onto a node
that no longer owns it.

This module is the availability half of partition tolerance; injection
lives in :class:`~repro.simcloud.failures.PartitionPlan` and the
heal-convergence oracle (V8) in :mod:`repro.dst.oracle`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import Timestamp
from .errors import SimCloudError
from .integrity import verify_record


@dataclass(frozen=True)
class Hint:
    """One missed replica write parked on a fallback node.

    ``origin`` records which middleware's view of the network forced
    the sloppy write (None when the owner was down rather than
    partitioned); the sweeper uses it to avoid draining a hint whose
    home is still partitioned from the path that created it.
    """

    name: str
    home_node: int
    fallback_node: int
    timestamp: Timestamp
    epoch: int
    origin: int | None = None


class HintStore:
    """The durable hint index, keyed by (name, home, fallback).

    Overwrites while the same link stays severed collapse onto one
    hint carrying the newest timestamp -- the fallback node already
    holds only the newest payload, so older hints would deliver
    nothing.  Also keeps the acked-write log the V8 oracle audits:
    every acknowledged PUT's (name, timestamp), so "no acked-write
    loss after heal" is checkable without trusting the store.
    """

    def __init__(self):
        self._hints: dict[tuple[str, int, int], Hint] = {}
        self.acked: list[tuple[str, Timestamp]] = []
        self.sloppy_writes = 0  # PUTs that needed at least one fallback
        self.stored = 0
        self.delivered = 0
        self.superseded = 0  # home already held >= the hint's timestamp
        self.dropped = 0  # name deleted / payload gone before drain
        self.unverified = 0  # fallback payload failed verification

    def add(
        self,
        name: str,
        home_node: int,
        fallback_node: int,
        timestamp: Timestamp,
        epoch: int,
        origin: int | None = None,
    ) -> Hint:
        key = (name, home_node, fallback_node)
        existing = self._hints.get(key)
        if existing is not None and existing.timestamp >= timestamp:
            return existing
        hint = Hint(name, home_node, fallback_node, timestamp, epoch, origin)
        self._hints[key] = hint
        self.stored += 1
        return hint

    def record_ack(self, name: str, timestamp: Timestamp) -> None:
        """Log one acknowledged PUT for the V8 heal-convergence audit."""
        self.acked.append((name, timestamp))

    def remove(self, hint: Hint) -> None:
        self._hints.pop((hint.name, hint.home_node, hint.fallback_node), None)

    def drop_name(self, name: str) -> int:
        """Discard every hint for a deleted object; returns the count."""
        stale = [k for k in self._hints if k[0] == name]
        for key in stale:
            del self._hints[key]
        self.dropped += len(stale)
        return len(stale)

    def holders_for(self, name: str) -> list[int]:
        """Fallback nodes currently holding hinted copies of ``name``."""
        return sorted(
            {h.fallback_node for h in self._hints.values() if h.name == name}
        )

    @property
    def outstanding(self) -> int:
        return len(self._hints)

    def hints(self) -> list[Hint]:
        """All outstanding hints in deterministic (key) order."""
        return [self._hints[key] for key in sorted(self._hints)]

    def snapshot(self) -> dict[str, int]:
        """Flat counters for the metrics registry."""
        return {
            "sloppy_writes": self.sloppy_writes,
            "stored": self.stored,
            "delivered": self.delivered,
            "superseded": self.superseded,
            "dropped": self.dropped,
            "unverified": self.unverified,
            "outstanding": self.outstanding,
        }


class HintDeliverySweeper:
    """Drains parked hints to their home replicas (cf. ``RepairSweeper``).

    Runs on the cluster-internal maintenance plane: fault injection is
    suspended and disk time is background-accounted, like repair and
    scrub.  A drain pass visits every outstanding hint in deterministic
    order and, for each one whose payload is readable and verified,
    writes it to the home replica -- or, when membership moved the name
    since the hint was parked (the hint's epoch is stale and its home
    is retired or no longer an owner), to the name's *current* owners.
    Hints whose home is still down or still partitioned from the
    originating middleware stay parked for a later pass.
    """

    def __init__(self, store):
        self.store = store

    def _deliverable(self, hint: Hint) -> bool:
        """Is the hint's home link usable from the view that parked it?"""
        partitions = self.store.partitions
        if partitions is None or hint.origin is None:
            return True
        from .failures import mw_endpoint, node_endpoint

        return partitions.reachable(
            mw_endpoint(hint.origin), node_endpoint(hint.home_node)
        )

    def drain(self) -> int:
        """One full drain pass; returns how many deliveries were made."""
        store = self.store
        hints = store.hints
        if hints is None or not hints.outstanding:
            return 0
        delivered = 0
        membership = store.membership
        with store._suspended_faults():
            for hint in hints.hints():
                delivered += self._drain_one(hint, membership)
        if delivered and not store.tracer.noop:
            store.tracer.event("hints.drain", tags={"delivered": delivered})
        return delivered

    def _drain_one(self, hint: Hint, membership) -> int:
        store = self.store
        hints = store.hints
        name = hint.name
        if name not in store._names:
            # The object was deleted while the hint was parked: the
            # hinted copy is unregistered garbage now.
            hints.remove(hint)
            hints.dropped += 1
            self._discard_fallback_copy(hint, set())
            return 0
        fallback = store.nodes.get(hint.fallback_node)
        if fallback is None:
            # Fallback retired with its disk: nothing left to deliver.
            hints.remove(hint)
            hints.dropped += 1
            return 0
        if fallback.is_down:
            return 0  # payload unreadable right now; keep the hint
        record = fallback.peek(name)
        if record is None:
            hints.remove(hint)
            hints.dropped += 1
            return 0
        if not verify_record(record):
            # Never deliver an unverified payload.  The home replica is
            # healed from other verified copies by repair/scrub.
            hints.remove(hint)
            hints.unverified += 1
            return 0
        owners = set(store.ring.nodes_for(name))
        epoch = membership.epoch if membership is not None else 0
        home_current = hint.home_node in store.nodes and hint.home_node in owners
        if home_current:
            targets = [hint.home_node]
        else:
            # Membership moved on (epoch advanced, home retired or
            # demoted): never deliver to a node that no longer owns the
            # name -- re-route to the current owners instead.
            targets = sorted(owners - {hint.fallback_node})
        if home_current and hint.epoch == epoch and not self._deliverable(hint):
            return 0  # home still partitioned from the parking view
        delivered = 0
        satisfied = True
        for node_id in targets:
            node = store.nodes[node_id]
            if node.is_down:
                satisfied = False
                continue
            held = node.peek(name)
            if (
                held is not None
                and held.timestamp >= hint.timestamp
                and verify_record(held)
            ):
                self.store.hints.superseded += 1
                continue
            try:
                store.ledger.background_us += node.write(record)
            except SimCloudError:
                satisfied = False
                continue
            store.hints.delivered += 1
            delivered += 1
            if not store.tracer.noop:
                store.tracer.event(
                    "hints.delivered",
                    tags={"object": name, "store_node": node_id},
                )
        if satisfied:
            hints.remove(hint)
            self._discard_fallback_copy(hint, owners)
        return delivered

    def _discard_fallback_copy(self, hint: Hint, owners: set[int]) -> None:
        """Drop the parked payload once the hint is resolved.

        The fallback keeps the copy only if the ring meanwhile made it
        a legitimate owner (or another hint for the same name is still
        parked there).
        """
        store = self.store
        if hint.fallback_node in owners:
            return
        if hint.fallback_node in store.hints.holders_for(hint.name):
            return
        node = store.nodes.get(hint.fallback_node)
        if node is None or node.is_down:
            return
        if node.peek(hint.name) is not None:
            try:
                store.ledger.background_us += node.delete(hint.name)
            except SimCloudError:
                pass

    def drain_to_empty(self, max_rounds: int = 1_000) -> int:
        """Drain repeatedly until no hints remain or no progress is made.

        The DST quiesce path: after every link is healed and every node
        recovered, a bounded number of passes must leave zero stranded
        hints (the V8 oracle checks exactly that).
        """
        total = 0
        for _ in range(max_rounds):
            hints = self.store.hints
            if hints is None or not hints.outstanding:
                break
            before = hints.outstanding
            total += self.drain()
            if hints.outstanding >= before:
                break  # no progress: every survivor is blocked on a link
        return total
