"""`repro.simcloud` -- a from-scratch simulated object storage cloud.

This package replaces the paper's physical testbed (a nine-server
OpenStack Swift rack) with a deterministic discrete-cost simulation:
consistent-hash ring, replicated storage nodes, a flat
PUT/GET/DELETE/HEAD/COPY object API, a Swift-style per-account
file-path DB, and failure injection.  See DESIGN.md §2 for why this
substitution preserves the behaviour the paper measures.
"""

from .btree import BTree
from .clock import SimClock, Timestamp, TimestampFactory, makespan_us
from .cluster import ClusterConfig, SwiftCluster
from .container_db import ContainerDB, DirEntry, Row
from .errors import (
    AlreadyExists,
    CapacityError,
    CircuitOpenError,
    CorruptObjectError,
    CrossDeviceMove,
    DirectoryNotEmpty,
    FilesystemError,
    InvalidPath,
    IsADirectory,
    LinkDown,
    MembershipError,
    NodeDown,
    NotADirectory,
    ObjectAlreadyExists,
    ObjectNotFound,
    PathNotFound,
    PreconditionFailed,
    QuorumError,
    RequestTimeout,
    RingError,
    ServiceUnavailable,
    SimCloudError,
    TransientIOError,
)
from .failures import (
    FailureEvent,
    FailureSchedule,
    FaultDecision,
    FaultPlan,
    MessageLoss,
    PartitionPlan,
    mw_endpoint,
    node_endpoint,
)
from .hashring import HashRing, hash_key
from .hints import Hint, HintDeliverySweeper, HintStore
from .integrity import checksum_of, corrupt_record, crc32c, verify_record
from .latency import CostLedger, Jitter, LatencyModel
from .membership import ClusterMembership, RebalanceSweeper, TransitionPlan
from .node import NodeStats, ObjectRecord, StorageNode
from .object_store import ObjectInfo, ObjectStore
from .repair import RepairReport, RepairSweeper
from .scrub import ScrubReport, Scrubber
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
)
from .sparse import SparseData, payload_of

__all__ = [
    "AlreadyExists",
    "BTree",
    "BreakerConfig",
    "CapacityError",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClusterConfig",
    "ClusterMembership",
    "ContainerDB",
    "CorruptObjectError",
    "CostLedger",
    "CrossDeviceMove",
    "DirEntry",
    "DirectoryNotEmpty",
    "FailureEvent",
    "FailureSchedule",
    "FaultDecision",
    "FaultPlan",
    "FilesystemError",
    "HashRing",
    "Hint",
    "HintDeliverySweeper",
    "HintStore",
    "InvalidPath",
    "IsADirectory",
    "Jitter",
    "LatencyModel",
    "LinkDown",
    "MembershipError",
    "MessageLoss",
    "NodeDown",
    "NodeStats",
    "NotADirectory",
    "ObjectAlreadyExists",
    "ObjectInfo",
    "ObjectNotFound",
    "ObjectRecord",
    "ObjectStore",
    "PartitionPlan",
    "PathNotFound",
    "PreconditionFailed",
    "QuorumError",
    "RebalanceSweeper",
    "RepairReport",
    "RepairSweeper",
    "RequestTimeout",
    "ResilienceStats",
    "RetryPolicy",
    "RingError",
    "Row",
    "ScrubReport",
    "Scrubber",
    "ServiceUnavailable",
    "SimClock",
    "SimCloudError",
    "SparseData",
    "StorageNode",
    "SwiftCluster",
    "Timestamp",
    "TimestampFactory",
    "TransientIOError",
    "TransitionPlan",
    "checksum_of",
    "corrupt_record",
    "crc32c",
    "hash_key",
    "makespan_us",
    "mw_endpoint",
    "node_endpoint",
    "payload_of",
    "verify_record",
]
