"""Swift's per-account file-path database.

OpenStack Swift keeps an SQLite/MySQL "container DB" per account: one
row per object, keyed by full path, binary-searched to accelerate LIST
and COPY (paper §2, Figure 3).  :class:`ContainerDB` reproduces it as a
costed wrapper around the from-scratch :class:`~repro.simcloud.btree.BTree`:

* point ops (insert/delete/get) pay one O(log N) descent;
* :meth:`list_dir` reproduces Swift's *delimiter listing*: one marker
  query -- i.e. one descent -- per direct child returned, which is the
  mechanical origin of Table 1's O(m · log N) LIST complexity;
* :meth:`list_subtree` is the single-descent range scan
  (O(log N + rows)) that backs COPY's O(n + log N) bound.

Costs are converted from counted B-tree node visits so the simulated
time is structure-faithful, not hand-waved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .btree import BTree
from .clock import SimClock
from .latency import CostLedger, LatencyModel

# Sorts after every printable path character; used to skip a subtree in
# delimiter listings, like Swift's marker/end_marker query parameters.
_AFTER_SUBTREE = "￿"


@dataclass(frozen=True)
class Row:
    """One object row: full path plus whatever metadata the FS stores."""

    path: str
    meta: dict[str, Any]


@dataclass(frozen=True)
class DirEntry:
    """One direct child from a delimiter listing."""

    name: str  # child name relative to the listed directory
    is_dir: bool
    meta: dict[str, Any] | None  # None for pseudo-directories


class ContainerDB:
    """Costed per-account file-path DB (the Swift baseline's index)."""

    def __init__(
        self,
        latency: LatencyModel,
        clock: SimClock,
        ledger: CostLedger | None = None,
        min_degree: int = 64,
        query_overhead_us: int = 0,
    ):
        self._tree = BTree(min_degree=min_degree)
        self._latency = latency
        self._clock = clock
        self.ledger = ledger if ledger is not None else CostLedger()
        # Charged once per DB query (network hop to the container server).
        # Swift's delimiter listing issues one marker query per child,
        # which is what turns O(m log N) into real wall-clock pain.
        self.query_overhead_us = query_overhead_us

    def __len__(self) -> int:
        return len(self._tree)

    # ------------------------------------------------------------------
    # cost plumbing
    # ------------------------------------------------------------------
    def _charge_visits(self, before: int, rows: int = 0, write: bool = False) -> None:
        visits = self._tree.visits - before
        cost = (
            self.query_overhead_us
            + visits * self._latency.db_node_us
            + rows * self._latency.db_row_us
        )
        if write:
            cost += self._latency.db_write_us
            self.ledger.db_writes += 1
        else:
            self.ledger.db_reads += 1
        self._clock.advance(cost)

    # ------------------------------------------------------------------
    # point operations
    # ------------------------------------------------------------------
    def insert(self, path: str, meta: dict[str, Any]) -> None:
        before = self._tree.visits
        self._tree.insert(path, dict(meta))
        self._charge_visits(before, write=True)

    def delete(self, path: str) -> bool:
        before = self._tree.visits
        removed = self._tree.delete(path)
        self._charge_visits(before, write=True)
        return removed

    def get(self, path: str) -> dict[str, Any] | None:
        before = self._tree.visits
        meta = self._tree.get(path)
        self._charge_visits(before, rows=1)
        return meta

    def exists(self, path: str) -> bool:
        return self.get(path) is not None

    # ------------------------------------------------------------------
    # listings
    # ------------------------------------------------------------------
    def list_dir(self, prefix: str, limit: int | None = None) -> list[DirEntry]:
        """Direct children of ``prefix`` via Swift-style delimiter paging.

        ``prefix`` must end with '/'.  Each returned child costs one
        full descent (marker query), so m children over N rows cost
        O(m · log N) -- Table 1's Swift LIST entry, measured not assumed.
        """
        if not prefix.endswith("/"):
            raise ValueError("list_dir prefix must end with '/'")
        entries: list[DirEntry] = []
        marker = prefix
        while limit is None or len(entries) < limit:
            before = self._tree.visits
            batch = self._tree.scan_from(marker, 1)
            self._charge_visits(before, rows=len(batch))
            if not batch:
                break
            path, meta = batch[0]
            if not path.startswith(prefix):
                break
            rest = path[len(prefix):]
            if "/" in rest:
                sub = rest.split("/", 1)[0]
                entries.append(DirEntry(name=sub, is_dir=True, meta=None))
                marker = prefix + sub + "/" + _AFTER_SUBTREE
            else:
                is_dir = bool(meta.get("dir_marker"))
                entries.append(DirEntry(name=rest, is_dir=is_dir, meta=meta))
                marker = path
        return entries

    def list_subtree(self, prefix: str) -> list[Row]:
        """Every row under ``prefix``: one descent, then a leaf walk.

        O(log N + rows) -- the fast path COPY uses to enumerate the n
        members of a directory (Table 1: O(n + log N)).
        """
        rows: list[Row] = []
        marker = prefix[:-1] if prefix.endswith("/") else prefix
        # Page through in large chunks; each chunk is one descent.
        page = 1024
        while True:
            before = self._tree.visits
            batch = self._tree.scan_from(marker, page)
            kept = [
                Row(path=k, meta=v) for k, v in batch if k.startswith(prefix)
            ]
            self._charge_visits(before, rows=len(batch))
            rows.extend(kept)
            if len(batch) < page or (batch and not batch[-1][0].startswith(prefix)):
                break
            marker = batch[-1][0]
        return rows

    # ------------------------------------------------------------------
    # maintenance / tests
    # ------------------------------------------------------------------
    def all_rows(self) -> list[Row]:
        """Uncosted full dump (tests and audits only)."""
        return [Row(path=k, meta=v) for k, v in self._tree.items()]

    def check_invariants(self) -> None:
        self._tree.check_invariants()
