"""Failure injection for the simulated rack.

The motivation for H2Cloud is that index clouds fail (the paper cites
Dropbox's data-loss incidents); the reproduction therefore needs a way
to crash nodes, partition the network, and drop gossip messages on a
deterministic schedule so integration tests can show (a) the object
cloud's replication riding through storage-node failures and (b) the
NameRing gossip protocol converging despite message loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .clock import SimClock
from .node import StorageNode


@dataclass(frozen=True, order=True)
class FailureEvent:
    """A scheduled state change for one node."""

    at_us: int
    node_id: int
    action: str  # "crash" | "recover" | "wipe"

    _ACTIONS = ("crash", "recover", "wipe")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown failure action: {self.action!r}")


class FailureSchedule:
    """Applies :class:`FailureEvent`s as simulated time passes.

    Call :meth:`pump` after advancing the clock; events whose time has
    come are applied in order.  Deterministic: no wall-clock, no
    unseeded randomness.
    """

    def __init__(self, clock: SimClock, nodes: dict[int, StorageNode]):
        self._clock = clock
        self._nodes = nodes
        self._pending: list[FailureEvent] = []
        self.applied: list[FailureEvent] = []

    def schedule(self, event: FailureEvent) -> None:
        if event.node_id not in self._nodes:
            raise KeyError(f"unknown node {event.node_id}")
        self._pending.append(event)
        self._pending.sort()

    def crash_at(self, at_us: int, node_id: int) -> None:
        self.schedule(FailureEvent(at_us, node_id, "crash"))

    def recover_at(self, at_us: int, node_id: int) -> None:
        self.schedule(FailureEvent(at_us, node_id, "recover"))

    def wipe_at(self, at_us: int, node_id: int) -> None:
        self.schedule(FailureEvent(at_us, node_id, "wipe"))

    def pump(self) -> list[FailureEvent]:
        """Apply all events due at or before the current simulated time."""
        fired: list[FailureEvent] = []
        while self._pending and self._pending[0].at_us <= self._clock.now_us:
            event = self._pending.pop(0)
            node = self._nodes[event.node_id]
            if event.action == "crash":
                node.crash()
            elif event.action == "recover":
                node.recover()
            else:  # wipe: disk replaced, node returns empty
                node.wipe()
                node.recover()
            self.applied.append(event)
            fired.append(event)
        return fired

    @property
    def pending(self) -> tuple[FailureEvent, ...]:
        return tuple(self._pending)


class MessageLoss:
    """Deterministic Bernoulli message-drop model for gossip links."""

    def __init__(self, drop_probability: float = 0.0, seed: int = 7):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        self.drop_probability = drop_probability
        self._rng = random.Random(seed)
        self.dropped = 0
        self.delivered = 0

    def should_drop(self) -> bool:
        if self.drop_probability <= 0.0:
            self.delivered += 1
            return False
        drop = self._rng.random() < self.drop_probability
        if drop:
            self.dropped += 1
        else:
            self.delivered += 1
        return drop
