"""Failure injection for the simulated rack.

The motivation for H2Cloud is that index clouds fail (the paper cites
Dropbox's data-loss incidents); the reproduction therefore needs a way
to crash nodes, partition the network, and drop gossip messages on a
deterministic schedule so integration tests can show (a) the object
cloud's replication riding through storage-node failures, (b) the
NameRing gossip protocol converging despite message loss, and (c) the
fleet healing -- acked writes intact -- after link-level partitions.

Four failure regimes live here:

* **Scheduled state changes** (:class:`FailureSchedule`): crash /
  recover / wipe events applied as simulated time passes -- binary node
  death and resurrection -- plus scheduled **corrupt** events that
  silently damage one stored replica (bit-rot with a timestamp).
* **Per-request transient faults** (:class:`FaultPlan`): a seeded
  Bernoulli mix of retryable I/O errors, request timeouts and
  slow-replica latency spikes, drawn independently per storage node and
  per primitive.  This is the regime real object clouds mask with
  retries and circuit breakers (see :mod:`repro.simcloud.resilience`);
  every draw comes from a per-node deterministic stream so runs are
  bit-reproducible.
* **Silent corruption** (also :class:`FaultPlan`, separate per-node
  streams so arming it never perturbs the transient-fault pattern):
  ``bitrot_rate`` rots a stored replica just before a read serves it
  (bit-flip or truncation, checksum left stale), and
  ``torn_write_rate`` fires on crash events -- the node goes down with
  its most recent write only partially on disk.  Detection and healing
  live in the verified read path (:mod:`repro.simcloud.object_store`),
  the repair sweeper and the scrubber (:mod:`repro.simcloud.scrub`).
* **Network partitions** (:class:`PartitionPlan`): an asymmetric
  reachability matrix over *endpoints* -- middleware <-> storage-node
  request links and middleware <-> middleware gossip links -- severed
  and healed by named cuts, either immediately or on a sim-clock
  schedule (``partition_at`` / ``heal_at``).  Purely scheduled, no
  RNG: arming the plan with zero cuts cannot move any existing
  deterministic-simulation digest.  Enforcement lives in the request
  path (:mod:`repro.simcloud.object_store` raises
  :class:`~repro.simcloud.errors.LinkDown` per severed middleware ->
  node link) and in rumor delivery (:mod:`repro.core.gossip`);
  availability under partitions is restored by hinted handoff
  (:mod:`repro.simcloud.hints`).

Gossip message loss (:class:`MessageLoss`) also lives here: Bernoulli
drops from a single seeded stream by default, or -- when partitions are
armed -- from isolated per-link streams so one link's traffic never
perturbs another link's drop pattern.
"""

from __future__ import annotations

import heapq
import random
from contextlib import contextmanager
from dataclasses import dataclass

from .clock import SimClock
from .node import StorageNode


@dataclass(frozen=True, order=True)
class FailureEvent:
    """A scheduled state change for one node.

    ``corrupt`` events additionally carry the victim object's ``name``
    (None picks a deterministic victim among the node's replicas) and
    the corruption ``mode`` (``bitflip`` | ``truncate``).
    """

    at_us: int
    node_id: int
    action: str  # "crash" | "recover" | "wipe" | "corrupt"
    name: str | None = None
    mode: str = "bitflip"

    _ACTIONS = ("crash", "recover", "wipe", "corrupt")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown failure action: {self.action!r}")


class FailureSchedule:
    """Applies :class:`FailureEvent`s as simulated time passes.

    Call :meth:`pump` after advancing the clock; events whose time has
    come are applied in timestamp order, with same-timestamp ties broken
    by schedule order (the order events were registered).  Deterministic:
    no wall-clock, no unseeded randomness.  The queue is a binary heap,
    so scheduling and pumping are O(log n) per event.

    ``on_recover`` (settable) is invoked with the node id after every
    ``recover``/``wipe`` event is applied -- the hook the cluster uses to
    trigger replica-repair sweeps so recoveries actually heal.
    """

    def __init__(self, clock: SimClock, nodes: dict[int, StorageNode]):
        self._clock = clock
        self._nodes = nodes
        # (at_us, schedule_seq, event): the seq tie-breaks equal
        # timestamps so events apply in the order they were scheduled.
        self._heap: list[tuple[int, int, FailureEvent]] = []
        self._seq = 0
        self.applied: list[FailureEvent] = []
        # (node_id, object name, mode) for every corruption actually
        # landed -- scheduled corrupt events plus torn writes on crash.
        self.corrupted: list[tuple[int, str, str]] = []
        self.on_recover = None  # callable(node_id) | None

    def schedule(self, event: FailureEvent) -> None:
        if event.node_id not in self._nodes:
            raise KeyError(f"unknown node {event.node_id}")
        heapq.heappush(self._heap, (event.at_us, self._seq, event))
        self._seq += 1

    def crash_at(self, at_us: int, node_id: int) -> None:
        self.schedule(FailureEvent(at_us, node_id, "crash"))

    def recover_at(self, at_us: int, node_id: int) -> None:
        self.schedule(FailureEvent(at_us, node_id, "recover"))

    def wipe_at(self, at_us: int, node_id: int) -> None:
        self.schedule(FailureEvent(at_us, node_id, "wipe"))

    def corrupt_at(
        self,
        at_us: int,
        node_id: int,
        name: str | None = None,
        mode: str = "bitflip",
    ) -> None:
        """Schedule silent bit-rot on one of ``node_id``'s replicas.

        ``name=None`` lets the event pick a deterministic victim (seeded
        by the event's own coordinates) among whatever the node holds
        when the event fires.  The damaged replica keeps its stale
        checksum -- only a verified read, repair sweep, scrub or fsck
        integrity pass can tell.
        """
        self.schedule(FailureEvent(at_us, node_id, "corrupt", name=name, mode=mode))

    def pump(self) -> list[FailureEvent]:
        """Apply all events due at or before the current simulated time."""
        fired: list[FailureEvent] = []
        while self._heap and self._heap[0][0] <= self._clock.now_us:
            _, _, event = heapq.heappop(self._heap)
            node = self._nodes[event.node_id]
            if event.action == "crash":
                # Torn write: power dies mid-write, leaving the node's
                # most recent write only partially on disk (decided by
                # the fault plan's seeded per-node corruption stream).
                plan = node.fault_plan
                if plan is not None and plan.draw_torn(event.node_id):
                    victim = node.tear_last_write(plan.corrupt_rng(event.node_id))
                    if victim is not None:
                        self.corrupted.append((event.node_id, victim, "torn_write"))
                node.crash()
            elif event.action == "recover":
                node.recover()
            elif event.action == "corrupt":
                victim = node.corrupt_object(
                    name=event.name,
                    mode=event.mode,
                    seed=event.at_us * 31 + self._seq,
                )
                if victim is not None:
                    self.corrupted.append((event.node_id, victim, event.mode))
            else:  # wipe: disk replaced, node returns empty
                node.wipe()
                node.recover()
            self.applied.append(event)
            fired.append(event)
            if event.action in ("recover", "wipe") and self.on_recover:
                self.on_recover(event.node_id)
        return fired

    @property
    def pending(self) -> tuple[FailureEvent, ...]:
        return tuple(event for _, _, event in sorted(self._heap))

    def discard_node(self, node_id: int) -> int:
        """Drop pending events addressed to a departed node.

        Called when elastic membership retires a node: an event firing
        for a node that no longer exists would be meaningless (and
        :meth:`pump` would fail looking it up).  Returns how many
        events were dropped.
        """
        keep = [entry for entry in self._heap if entry[2].node_id != node_id]
        dropped = len(self._heap) - len(keep)
        if dropped:
            self._heap = keep
            heapq.heapify(self._heap)
        return dropped

    def clear_pending(self) -> int:
        """Drop every not-yet-applied event; returns how many were dropped.

        Used by the deterministic-simulation harness at quiesce time: a
        shrunk schedule may have lost the ``advance`` steps that would
        have fired an event, and a stray crash landing during the final
        convergence drive would make the oracle's verdict depend on
        quiesce internals rather than on the schedule under test.
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped


# ----------------------------------------------------------------------
# per-request transient faults
# ----------------------------------------------------------------------

FAULT_NONE = "none"
FAULT_IO_ERROR = "io_error"
FAULT_TIMEOUT = "timeout"
FAULT_SLOW = "slow"
FAULT_BITROT = "bitrot"
FAULT_TORN_WRITE = "torn_write"


@dataclass(frozen=True)
class FaultDecision:
    """The fault plan's verdict for one request on one node."""

    kind: str  # FAULT_NONE | FAULT_IO_ERROR | FAULT_TIMEOUT | FAULT_SLOW
    extra_us: int = 0  # timeout wait / slow-replica latency spike


class FaultPlan:
    """Deterministic, seeded per-request fault injection for storage nodes.

    Each node draws from its own seeded stream, so the fault pattern a
    node sees does not depend on what requests other nodes served --
    adding traffic to one node never perturbs another's faults.

    Rates are independent Bernoulli draws evaluated in order
    io_error -> timeout -> slow; at most one fault fires per request.
    ``window_us=(start, stop)`` confines injection to a simulated-time
    window (``stop=None`` means forever), for fault-storm scenarios.

    Maintenance paths (repair sweeps, quorum undo) run with the plan
    :meth:`suspended` so that healing cannot be starved by the very
    faults it is healing.
    """

    def __init__(
        self,
        seed: int = 0xFA117,
        io_error_rate: float = 0.0,
        timeout_rate: float = 0.0,
        slow_rate: float = 0.0,
        timeout_us: int = 30_000,
        slow_extra_us: int = 40_000,
        window_us: tuple[int, int | None] = (0, None),
        clock: SimClock | None = None,
        bitrot_rate: float = 0.0,
        torn_write_rate: float = 0.0,
    ):
        for rate in (io_error_rate, timeout_rate, slow_rate,
                     bitrot_rate, torn_write_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be within [0, 1]")
        if timeout_us < 0 or slow_extra_us < 0:
            raise ValueError("fault durations must be >= 0")
        self.seed = seed
        self.io_error_rate = io_error_rate
        self.timeout_rate = timeout_rate
        self.slow_rate = slow_rate
        self.bitrot_rate = bitrot_rate
        self.torn_write_rate = torn_write_rate
        self.timeout_us = timeout_us
        self.slow_extra_us = slow_extra_us
        self.window_us = window_us
        self.clock = clock  # set when installed on a cluster
        self._rngs: dict[int, random.Random] = {}
        # Corruption draws come from their own per-node streams so that
        # arming bit-rot never shifts the transient-fault pattern (pinned
        # fault sequences in tests and DST digests stay stable).
        self._corrupt_rngs: dict[int, random.Random] = {}
        self._suspended = 0
        self.injected = {
            FAULT_IO_ERROR: 0,
            FAULT_TIMEOUT: 0,
            FAULT_SLOW: 0,
            FAULT_BITROT: 0,
            FAULT_TORN_WRITE: 0,
        }

    def _rng(self, node_id: int) -> random.Random:
        rng = self._rngs.get(node_id)
        if rng is None:
            rng = self._rngs[node_id] = random.Random(
                self.seed * 1_000_003 + node_id
            )
        return rng

    def corrupt_rng(self, node_id: int) -> random.Random:
        """The node's dedicated corruption stream (never shared with
        the transient-fault stream -- see ``__init__``)."""
        rng = self._corrupt_rngs.get(node_id)
        if rng is None:
            rng = self._corrupt_rngs[node_id] = random.Random(
                self.seed * 9_999_991 + node_id
            )
        return rng

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @contextmanager
    def suspended(self):
        """Context manager: no faults fire inside (maintenance paths)."""
        self._suspended += 1
        try:
            yield self
        finally:
            self._suspended -= 1

    def _in_window(self) -> bool:
        if self.clock is None:
            return True
        start, stop = self.window_us
        now = self.clock.now_us
        return now >= start and (stop is None or now < stop)

    def draw(self, node_id: int, op: str) -> FaultDecision:
        """The fault verdict for one request; ``op`` names the primitive."""
        if self._suspended or not self._in_window():
            return FaultDecision(FAULT_NONE)
        rng = self._rng(node_id)
        # One uniform draw per rate keeps the per-node stream aligned
        # regardless of which faults fire.
        io_roll = rng.random()
        timeout_roll = rng.random()
        slow_roll = rng.random()
        if self.io_error_rate > 0.0 and io_roll < self.io_error_rate:
            self.injected[FAULT_IO_ERROR] += 1
            return FaultDecision(FAULT_IO_ERROR)
        if self.timeout_rate > 0.0 and timeout_roll < self.timeout_rate:
            self.injected[FAULT_TIMEOUT] += 1
            return FaultDecision(FAULT_TIMEOUT, extra_us=self.timeout_us)
        if self.slow_rate > 0.0 and slow_roll < self.slow_rate:
            self.injected[FAULT_SLOW] += 1
            return FaultDecision(FAULT_SLOW, extra_us=self.slow_extra_us)
        return FaultDecision(FAULT_NONE)

    def draw_bitrot(self, node_id: int) -> str | None:
        """Should the replica about to be served rot first?

        Returns the corruption mode (``bitflip`` | ``truncate``) or
        None.  Obeys :meth:`suspended` and the fault-storm window like
        transient faults, but draws from the separate corruption stream.
        """
        if self.bitrot_rate <= 0.0 or self._suspended or not self._in_window():
            return None
        rng = self.corrupt_rng(node_id)
        roll = rng.random()
        mode_roll = rng.random()
        if roll < self.bitrot_rate:
            self.injected[FAULT_BITROT] += 1
            return "bitflip" if mode_roll < 0.5 else "truncate"
        return None

    def draw_torn(self, node_id: int) -> bool:
        """Does the crash landing on ``node_id`` tear its last write?

        Not window-gated: the crash event itself decides *when*; the
        rate only decides whether power loss caught a write in flight.
        """
        if self.torn_write_rate <= 0.0 or self._suspended:
            return False
        if self.corrupt_rng(node_id).random() < self.torn_write_rate:
            self.injected[FAULT_TORN_WRITE] += 1
            return True
        return False


class MessageLoss:
    """Deterministic Bernoulli message-drop model for gossip links.

    By default every drop verdict comes from one shared seeded stream,
    in call order -- the historical behaviour that existing DST corpus
    digests pin.  With ``per_link=True`` each directed ``(src, dst)``
    link draws from its own stream (seeded from the link's coordinates,
    like :class:`FaultPlan`'s per-node streams), so traffic on one link
    never perturbs another link's drop pattern.  The partition layer
    arms per-link mode because a severed link suppresses its sends
    entirely -- with a shared stream that suppression would shift every
    other link's draws.
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        seed: int = 7,
        per_link: bool = False,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        self.drop_probability = drop_probability
        self.seed = seed
        self.per_link = per_link
        self._rng = random.Random(seed)
        self._link_rngs: dict[tuple[object, object], random.Random] = {}
        self.dropped = 0
        self.delivered = 0

    def _link_rng(self, src, dst) -> random.Random:
        rng = self._link_rngs.get((src, dst))
        if rng is None:
            # String seeding hashes with sha512 -- stable across runs
            # and platforms, like the corruption streams' integer seeds.
            rng = self._link_rngs[(src, dst)] = random.Random(
                f"{self.seed}:{src}->{dst}"
            )
        return rng

    def should_drop(self, src=None, dst=None) -> bool:
        if self.drop_probability <= 0.0:
            self.delivered += 1
            return False
        if self.per_link and src is not None and dst is not None:
            rng = self._link_rng(src, dst)
        else:
            rng = self._rng
        drop = rng.random() < self.drop_probability
        if drop:
            self.dropped += 1
        else:
            self.delivered += 1
        return drop


# ----------------------------------------------------------------------
# link-level network partitions
# ----------------------------------------------------------------------


def mw_endpoint(middleware_id: int) -> str:
    """The partition-matrix endpoint name for a middleware."""
    return f"mw:{middleware_id}"


def node_endpoint(node_id: int) -> str:
    """The partition-matrix endpoint name for a storage node."""
    return f"node:{node_id}"


class PartitionPlan:
    """An asymmetric link-level reachability matrix with scheduled cuts.

    Endpoints are opaque strings (see :func:`mw_endpoint` /
    :func:`node_endpoint`); a *cut* is a named set of directed
    ``(src, dst)`` links severed together, so a whole partition heals
    atomically by name.  Directions are independent -- severing
    ``a -> b`` leaves ``b -> a`` reachable unless also cut -- which is
    what lets tests model asymmetric partitions (a middleware that can
    send but not hear, and vice versa).

    The plan is purely scheduled: no randomness, no hidden state.  The
    fast path (:meth:`reachable` with no active cuts) is one dict
    check, so arming the plan on a cluster costs nothing until a cut
    actually lands.

    ``on_heal`` (settable) is invoked with the cut id after every heal
    -- the hook hinted handoff uses to drain hints the moment a
    partition ends (mirrors ``FailureSchedule.on_recover``).
    """

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock
        # directed link -> the set of cut ids currently severing it
        self._severed: dict[tuple[str, str], set[str]] = {}
        # cut id -> the directed links it severed
        self._cuts: dict[str, set[tuple[str, str]]] = {}
        # (at_us, seq, kind, payload): scheduled partition/heal events
        self._heap: list[tuple[int, int, str, object]] = []
        self._seq = 0
        self.cuts_applied = 0
        self.heals = 0
        self.blocked_requests = 0
        self.blocked_rumors = 0
        self.on_heal = None  # callable(cut_id) | None

    # ------------------------------------------------------------------
    # the matrix
    # ------------------------------------------------------------------
    @property
    def active(self) -> frozenset[str]:
        """Ids of cuts currently severing at least one link."""
        return frozenset(self._cuts)

    def reachable(self, src: str, dst: str) -> bool:
        """Can a message travel the directed link ``src -> dst``?"""
        if not self._severed:
            return True
        return (src, dst) not in self._severed

    def sever(self, src: str, dst: str, cut: str) -> None:
        """Sever the single directed link ``src -> dst`` under ``cut``."""
        link = (src, dst)
        self._severed.setdefault(link, set()).add(cut)
        self._cuts.setdefault(cut, set()).add(link)

    def isolate(
        self,
        island: list[str] | tuple[str, ...],
        peers: list[str] | tuple[str, ...],
        cut: str,
        mode: str = "both",
    ) -> int:
        """Partition ``island`` away from ``peers`` under one named cut.

        ``mode`` picks the direction(s) severed: ``"both"`` (a true
        split), ``"out"`` (island can hear but not send) or ``"in"``
        (island can send but not hear) -- the asymmetric cases.  Links
        *within* the island and *within* the peer set stay intact.
        Returns how many directed links were severed.
        """
        if mode not in ("both", "in", "out"):
            raise ValueError(f"unknown partition mode: {mode!r}")
        before = len(self._cuts.get(cut, ()))
        for a in island:
            for b in peers:
                if a == b:
                    continue
                if mode in ("both", "out"):
                    self.sever(a, b, cut)
                if mode in ("both", "in"):
                    self.sever(b, a, cut)
        severed = len(self._cuts.get(cut, ())) - before
        if severed:
            self.cuts_applied += 1
        return severed

    def heal(self, cut: str) -> int:
        """Undo one named cut; returns how many links it released.

        Idempotent: healing an unknown or already-healed cut releases
        zero links and does not fire ``on_heal``.
        """
        links = self._cuts.pop(cut, None)
        if not links:
            return 0
        for link in links:
            owners = self._severed.get(link)
            if owners is not None:
                owners.discard(cut)
                if not owners:
                    del self._severed[link]
        self.heals += 1
        if self.on_heal:
            self.on_heal(cut)
        return len(links)

    def heal_all(self) -> int:
        """Heal every active cut; returns how many cuts were released."""
        healed = 0
        for cut in sorted(self._cuts):
            healed += 1 if self.heal(cut) else 0
        return healed

    # ------------------------------------------------------------------
    # the schedule
    # ------------------------------------------------------------------
    def partition_at(
        self,
        at_us: int,
        island: list[str] | tuple[str, ...],
        peers: list[str] | tuple[str, ...],
        cut: str,
        mode: str = "both",
    ) -> None:
        """Schedule :meth:`isolate` for simulated time ``at_us``."""
        payload = (tuple(island), tuple(peers), cut, mode)
        heapq.heappush(self._heap, (at_us, self._seq, "partition", payload))
        self._seq += 1

    def heal_at(self, at_us: int, cut: str) -> None:
        """Schedule :meth:`heal` of one cut for simulated time ``at_us``."""
        heapq.heappush(self._heap, (at_us, self._seq, "heal", cut))
        self._seq += 1

    def heal_all_at(self, at_us: int) -> None:
        """Schedule :meth:`heal_all` for simulated time ``at_us``."""
        heapq.heappush(self._heap, (at_us, self._seq, "heal_all", None))
        self._seq += 1

    def pump(self) -> int:
        """Apply all scheduled events due at or before the current time."""
        if self.clock is None or not self._heap:
            return 0
        fired = 0
        while self._heap and self._heap[0][0] <= self.clock.now_us:
            _, _, kind, payload = heapq.heappop(self._heap)
            if kind == "partition":
                island, peers, cut, mode = payload
                self.isolate(island, peers, cut, mode=mode)
            elif kind == "heal":
                self.heal(payload)
            else:  # heal_all
                self.heal_all()
            fired += 1
        return fired

    @property
    def pending(self) -> int:
        """How many scheduled events have not fired yet."""
        return len(self._heap)

    def clear_pending(self) -> int:
        """Drop every not-yet-applied event (DST quiesce, like
        ``FailureSchedule.clear_pending``)."""
        dropped = len(self._heap)
        self._heap.clear()
        return dropped
