"""A from-scratch consistent-hashing ring with virtual nodes.

This is the substrate the whole paper stands on: both OpenStack Swift
(the baseline) and H2 (the contribution) place objects on "a single,
larger consistent hashing ring" (§3.1, Figure 4c).  The implementation
follows the classic Karger et al. construction that Swift's ring
builder approximates: every storage node projects ``vnodes`` tokens
onto a 128-bit md5 token space; an object name hashes to a point on
the ring and is replicated on the next ``replicas`` *distinct* nodes
clockwise.

Properties the tests pin down:

* determinism -- same nodes, same tokens, same placement;
* balance -- with enough vnodes the per-node share of keys is within a
  few percent of fair;
* minimal disruption -- adding/removing one node only remaps the keys
  adjacent to its tokens (measured by :meth:`HashRing.moved_fraction`).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

from .errors import RingError

RING_BITS = 128
RING_SIZE = 1 << RING_BITS


def hash_key(key: str) -> int:
    """Map an object name to a point on the 128-bit ring (md5, like Swift)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest(), "big")


@dataclass(frozen=True)
class _Token:
    point: int
    node_id: int

    def __lt__(self, other: "_Token") -> bool:  # bisect support
        return self.point < other.point


class HashRing:
    """Consistent-hash ring mapping object names to replica node sets."""

    def __init__(self, replicas: int = 3, vnodes: int = 128):
        if replicas < 1:
            raise RingError("replicas must be >= 1")
        if vnodes < 1:
            raise RingError("vnodes must be >= 1")
        self.replicas = replicas
        self.vnodes = vnodes
        self._points: list[int] = []
        self._tokens: list[_Token] = []
        self._node_ids: set[int] = set()
        self._weights: dict[int, float] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, weight: float = 1.0) -> None:
        """Project ``node_id`` onto the ring with ``weight`` × vnodes tokens.

        Weight scales the node's token count (and therefore its expected
        key share): 0.5 claims roughly half a fair share, 2.0 roughly
        double.  Weight 1.0 places exactly the classic ``vnodes`` tokens,
        byte-identical to the unweighted construction.
        """
        if node_id in self._node_ids:
            raise RingError(f"node {node_id} already on the ring")
        if weight <= 0:
            raise RingError("node weight must be > 0")
        self._node_ids.add(node_id)
        self._weights[node_id] = weight
        for i in range(max(1, round(self.vnodes * weight))):
            point = hash_key(f"node-{node_id}-vnode-{i}")
            idx = bisect.bisect_left(self._points, point)
            # md5 collisions between distinct vnode labels are not a
            # practical concern, but keep placement well-defined anyway.
            while idx < len(self._points) and self._points[idx] == point:
                point = (point + 1) % RING_SIZE
                idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._tokens.insert(idx, _Token(point, node_id))

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._node_ids:
            raise RingError(f"node {node_id} not on the ring")
        self._node_ids.discard(node_id)
        self._weights.pop(node_id, None)
        keep = [(t.point, t) for t in self._tokens if t.node_id != node_id]
        self._points = [p for p, _ in keep]
        self._tokens = [t for _, t in keep]

    def copy(self) -> "HashRing":
        """An independent snapshot with identical token placement.

        Used by the membership controller to freeze the *old* epoch's
        placement while the live ring mutates underneath a transition.
        """
        clone = HashRing(replicas=self.replicas, vnodes=self.vnodes)
        clone._points = list(self._points)
        clone._tokens = list(self._tokens)
        clone._node_ids = set(self._node_ids)
        clone._weights = dict(self._weights)
        return clone

    def weight_of(self, node_id: int) -> float:
        """The weight ``node_id`` was added with (1.0 if unrecorded)."""
        return self._weights.get(node_id, 1.0)

    @property
    def node_ids(self) -> frozenset[int]:
        return frozenset(self._node_ids)

    def __len__(self) -> int:
        return len(self._node_ids)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def primary_for(self, key: str) -> int:
        """The first node clockwise from the key's ring point."""
        return self.nodes_for(key)[0]

    def nodes_for(self, key: str) -> list[int]:
        """The ``replicas`` distinct nodes responsible for ``key``.

        Walks clockwise from the key's hash point, collecting distinct
        node ids.  If the ring has fewer distinct nodes than
        ``replicas``, every node is returned (degraded replication,
        like a tiny Swift deployment).
        """
        if not self._tokens:
            raise RingError("ring has no nodes")
        want = min(self.replicas, len(self._node_ids))
        point = hash_key(key)
        start = bisect.bisect_right(self._points, point)
        chosen: list[int] = []
        seen: set[int] = set()
        n = len(self._tokens)
        for step in range(n):
            token = self._tokens[(start + step) % n]
            if token.node_id not in seen:
                seen.add(token.node_id)
                chosen.append(token.node_id)
                if len(chosen) == want:
                    break
        return chosen

    def fallbacks_for(self, key: str, exclude: set[int]) -> list[int]:
        """Fallback nodes for ``key``, preference-ordered, minus ``exclude``.

        Continues the :meth:`nodes_for` clockwise walk past the replica
        owners: the first distinct nodes after the owner set, in ring
        order, skipping anything in ``exclude``.  This is the Dynamo
        sloppy-quorum neighbour list -- the nodes a hinted write lands
        on when an owner is unreachable -- and it is a pure function of
        the ring, so every middleware computes the same preference list.
        """
        if not self._tokens:
            raise RingError("ring has no nodes")
        point = hash_key(key)
        start = bisect.bisect_right(self._points, point)
        chosen: list[int] = []
        seen: set[int] = set()
        n = len(self._tokens)
        for step in range(n):
            token = self._tokens[(start + step) % n]
            if token.node_id in seen:
                continue
            seen.add(token.node_id)
            if token.node_id in exclude:
                continue
            chosen.append(token.node_id)
        return chosen

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def load_distribution(self, keys: list[str]) -> dict[int, int]:
        """How many of ``keys`` land (primary) on each node."""
        counts: dict[int, int] = {nid: 0 for nid in self._node_ids}
        for key in keys:
            counts[self.primary_for(key)] += 1
        return counts

    def balance_error(self, keys: list[str]) -> float:
        """Max relative deviation from a perfectly fair primary share."""
        if not keys or not self._node_ids:
            return 0.0
        fair = len(keys) / len(self._node_ids)
        counts = self.load_distribution(keys)
        return max(abs(c - fair) / fair for c in counts.values())

    def moved_fraction(self, other: "HashRing", keys: list[str]) -> float:
        """Fraction of ``keys`` whose primary differs between two rings."""
        if not keys:
            return 0.0
        moved = sum(
            1 for key in keys if self.primary_for(key) != other.primary_for(key)
        )
        return moved / len(keys)
