"""Top-level CLI.

    python -m repro              # package overview + smoke demo
    python -m repro demo         # the quickstart scenario
    python -m repro repair       # fault drill: outage -> sweep -> healed
    python -m repro scrub        # integrity drill: bit-rot -> scrub -> healed
    python -m repro rebalance    # membership drill: join/drain -> live migration
    python -m repro partition    # partition drill: cut -> hinted writes -> heal
    python -m repro bench [...]  # forwards to repro.bench's CLI
    python -m repro dst [...]    # deterministic simulation testing
    python -m repro scenario [...]  # multi-tenant scenario suite + SLO cards
    python -m repro metrics      # Prometheus/JSON metrics for a canned run
    python -m repro trace        # Chrome trace of a canned traced run
    python -m repro obs [...]    # timeline | critpath | alerts over a scenario
"""

from __future__ import annotations

import sys

from . import __version__


def overview() -> None:
    print(f"repro {__version__} -- reproduction of H2Cloud (ICPP 2018)")
    print(__import__("repro").__doc__)
    print(
        "subcommands: demo | repair | scrub | rebalance | partition "
        "| bench [experiment ...] | dst [...] | scenario [...] "
        "| metrics | trace | obs [...]"
    )


def demo() -> None:
    from .core import H2CloudFS, deployment_report

    fs = H2CloudFS.launch(account="demo")
    fs.makedirs("/home/ubuntu")
    fs.write("/home/ubuntu/file1", b"hello world")
    rel = fs.relative_path_of("/home/ubuntu/file1")
    print("tree:", fs.listdir("/"), fs.listdir("/home/ubuntu"))
    print("quick access path:", rel, "->", fs.read_relative(rel))
    fs.rename("/home/ubuntu", "/home/xenial")
    print("after rename:", fs.listdir("/home"))
    print()
    print(deployment_report(fs))


def repair() -> None:
    """Inject an outage into a live deployment, then sweep it healed."""
    from .core import H2CloudFS
    from .simcloud import FaultPlan, SwiftCluster
    from .tools import repair_and_verify

    cluster = SwiftCluster.rack_scale()
    cluster.install_fault_plan(
        FaultPlan(seed=7, io_error_rate=0.04, timeout_rate=0.02, slow_rate=0.02)
    )
    fs = H2CloudFS(cluster, account="ops")
    fs.makedirs("/srv/app")
    for i in range(20):
        fs.write(f"/srv/app/shard-{i:02d}", bytes([i]) * 2048)
    victim = next(iter(cluster.nodes))
    print(f"crashing node {victim}, writing through the outage...")
    cluster.nodes[victim].crash()
    for i in range(20, 30):
        fs.write(f"/srv/app/shard-{i:02d}", bytes([i % 256]) * 2048)
    cluster.nodes[victim].wipe()  # disk replaced: node returns empty
    cluster.nodes[victim].recover()
    print(f"node {victim} back with a fresh disk; sweeping...")
    report, fsck = repair_and_verify(fs)
    res = fs.store.resilience
    print(
        f"transient faults masked along the way: {res.retries} retries "
        f"({res.io_errors} io-errors, {res.timeouts} timeouts)"
    )
    assert fsck.clean and not fsck.degraded_replicas
    print(f"repaired objects back to full replication: {report.replicas_written}")


def scrub() -> None:
    """Rot replicas behind the cluster's back, then scrub it clean."""
    from .core import H2CloudFS
    from .simcloud import FaultPlan, SwiftCluster

    cluster = SwiftCluster.rack_scale()
    cluster.install_fault_plan(FaultPlan(seed=11))  # corruption streams only
    fs = H2CloudFS(cluster, account="ops")
    fs.makedirs("/srv/app")
    for i in range(20):
        fs.write(f"/srv/app/shard-{i:02d}", bytes([i]) * 2048)
    store = fs.store
    # Silent damage on three nodes: two scheduled bit-rot events and one
    # truncation.  Checksums go stale; nothing notices yet.
    schedule = cluster.failures
    now = cluster.clock.now_us
    victims = sorted(cluster.nodes)[:3]
    schedule.corrupt_at(now + 1, victims[0], mode="bitflip")
    schedule.corrupt_at(now + 1, victims[1], mode="bitflip")
    schedule.corrupt_at(now + 1, victims[2], mode="truncate")
    cluster.clock.advance(10)
    schedule.pump()
    rotted = [f"node {n}: {name} ({mode})" for n, name, mode in schedule.corrupted]
    print("silently corrupted:", *rotted, sep="\n  ")
    print()
    report = fs.scrub()
    print(report.summary())
    res = store.resilience
    print(
        f"replicas healed from verified copies: {res.scrub_repairs}; "
        f"quarantined now: {store.quarantined_replica_count}; "
        f"unrecoverable: {len(store.unrecoverable)}"
    )
    check = fs.scrub()
    assert check.clean, check.summary()
    print("second pass:", check.summary())


def rebalance() -> int:
    """Membership drill: join a node, drain another, migrate live.

    The cluster keeps serving (and even failing: a transient-fault plan
    stays armed throughout) while the sweeper moves partitions in
    bounded batches; the drill prints the dual-ownership traffic the
    window generated and asserts the ring converged -- every object on
    exactly its owners, the drained node empty and retired.
    """
    from .core import H2CloudFS
    from .simcloud import FaultPlan, SwiftCluster

    cluster = SwiftCluster.rack_scale()
    cluster.install_fault_plan(
        FaultPlan(seed=13, io_error_rate=0.03, timeout_rate=0.02)
    )
    fs = H2CloudFS(cluster, account="ops")
    membership = cluster.membership
    fs.makedirs("/srv/app")
    for i in range(30):
        fs.write(f"/srv/app/shard-{i:02d}", bytes([i]) * 4096)
    fs.pump()

    node = membership.add_node()
    print(
        f"node {node.node_id} joined -> epoch {membership.epoch}, "
        f"{membership.pending_moves} partitions to migrate"
    )
    moved = 0
    while membership.in_transition:
        moved += membership.sweeper.step(max_objects=8)
        # The window stays open for live traffic between batches.
        fs.write(f"/srv/app/live-{moved:03d}", b"during-migration")
        fs.read(f"/srv/app/shard-{moved % 30:02d}")
    print(
        f"join complete: {moved} partitions moved, "
        f"{membership.dual_reads} dual-epoch reads, "
        f"{membership.write_throughs} write-throughs"
    )

    victim = max(n for n in cluster.nodes if n != node.node_id)
    membership.drain_node(victim)
    print(
        f"draining node {victim} -> epoch {membership.epoch}, "
        f"{membership.pending_moves} partitions to hand off"
    )
    membership.quiesce()
    from .tools import repair_and_verify

    report, check = repair_and_verify(fs, verbose=False)
    assert victim not in cluster.nodes, "drained node must retire"
    assert check.clean and not check.degraded_replicas, check.summary()
    handoff_ms = membership.handoff_us[-1] / 1000
    print(
        f"drain complete in {handoff_ms:.1f} sim-ms; node {victim} retired; "
        f"repair wrote {report.replicas_written} replicas; fsck clean"
    )
    print(
        f"totals: {membership.transitions} transitions, "
        f"{membership.partitions_moved} partitions, "
        f"{membership.bytes_migrated} bytes migrated"
    )
    return 0


def partition() -> int:
    """Partition drill: sever a middleware, write through the cut, heal.

    A link-level cut severs one middleware from half the storage fleet
    -- *its* view only; the other middlewares still reach every node
    and gossip keeps flowing.  With hinted handoff armed, writes routed
    through the cut middleware stay available on a sloppy quorum:
    payloads land on reachable fallback nodes alongside durable hints
    naming the unreachable homes.  On heal the sweeper drains every
    hint to its home, and the drill asserts the promise the V8 oracle
    enforces nightly: the hint store is empty and every acknowledged
    write is durable on its true owners (docs/PARTITIONS.md).
    """
    from .core import H2CloudFS
    from .simcloud import SwiftCluster, mw_endpoint, node_endpoint
    from .simcloud.errors import SimCloudError

    cluster = SwiftCluster.rack_scale()
    cluster.enable_hinted_handoff()
    fs = H2CloudFS(cluster, account="ops", middlewares=3)
    fs.makedirs("/srv/app")
    fs.pump()

    minority = sorted(cluster.nodes)[: len(cluster.nodes) // 2]
    links = cluster.partitions.isolate(
        [mw_endpoint(1)],
        [node_endpoint(n) for n in minority],
        "drill-cut",
    )
    print(
        f"cut open: middleware 1 lost nodes {minority} "
        f"({links} directed links severed; other middlewares unaffected)"
    )

    acked: list[str] = []
    failed = 0
    for i in range(24):
        path = f"/srv/app/obj-{i:02d}"
        try:
            fs.write(path, bytes([i]) * 1024)  # round-robins through the cut mw
        except SimCloudError:
            failed += 1
            continue
        acked.append(path)
    hints = cluster.store.hints
    print(
        f"storm through the cut: {len(acked)} acked, {failed} failed; "
        f"{hints.sloppy_writes} sloppy-quorum writes parked "
        f"{hints.outstanding} hints on fallbacks"
    )
    assert hints.sloppy_writes > 0, "cut never forced a sloppy write?"
    blocked = cluster.partitions.blocked_requests
    assert blocked > 0, "cut never blocked a request?"

    delivered_before = hints.delivered
    healed = cluster.partitions.heal("drill-cut")  # on_heal fires a drain
    cluster.hint_sweeper.drain_to_empty()
    fs.pump()
    print(
        f"healed {healed} links; sweeper delivered "
        f"{hints.delivered - delivered_before} hints to their homes, "
        f"{hints.outstanding} outstanding"
    )
    assert not hints.outstanding, "hints stranded after heal"
    assert not cluster.partitions.active, "cut still active after heal"

    durable = 0
    for path in acked:
        expected = bytes([int(path[-2:])]) * 1024
        assert fs.middlewares[1].read_file("ops", path) == expected, path
        assert fs.middlewares[0].read_file("ops", path) == expected, path
        durable += 1
    print(
        f"every acked write survived: {durable}/{len(acked)} durable on "
        f"their home replicas, readable through both the cut and healthy "
        f"middlewares ({blocked} requests were blocked at the link layer)"
    )
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        overview()
        return 0
    command, *rest = argv
    if command == "demo":
        demo()
        return 0
    if command == "repair":
        repair()
        return 0
    if command == "scrub":
        scrub()
        return 0
    if command == "rebalance":
        return rebalance()
    if command == "partition":
        return partition()
    if command == "bench":
        from .bench.__main__ import main as bench_main

        return bench_main(rest)
    if command == "dst":
        from .dst.cli import main as dst_main

        return dst_main(rest)
    if command == "scenario":
        from .bench.scale import scenario_main

        return scenario_main(rest)
    if command == "metrics":
        from .obs.cli import metrics_main

        return metrics_main(rest)
    if command == "trace":
        from .obs.cli import trace_main

        return trace_main(rest)
    if command == "obs":
        from .obs.cli import obs_main

        return obs_main(rest)
    print(
        f"unknown subcommand {command!r}; "
        "use demo | repair | scrub | rebalance | partition | bench | dst "
        "| scenario | metrics | trace | obs"
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
