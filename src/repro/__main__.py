"""Top-level CLI.

    python -m repro              # package overview + smoke demo
    python -m repro demo         # the quickstart scenario
    python -m repro bench [...]  # forwards to repro.bench's CLI
"""

from __future__ import annotations

import sys

from . import __version__


def overview() -> None:
    print(f"repro {__version__} -- reproduction of H2Cloud (ICPP 2018)")
    print(__import__("repro").__doc__)
    print("subcommands: demo | bench [experiment ...]")


def demo() -> None:
    from .core import H2CloudFS, deployment_report

    fs = H2CloudFS.launch(account="demo")
    fs.makedirs("/home/ubuntu")
    fs.write("/home/ubuntu/file1", b"hello world")
    rel = fs.relative_path_of("/home/ubuntu/file1")
    print("tree:", fs.listdir("/"), fs.listdir("/home/ubuntu"))
    print("quick access path:", rel, "->", fs.read_relative(rel))
    fs.rename("/home/ubuntu", "/home/xenial")
    print("after rename:", fs.listdir("/home"))
    print()
    print(deployment_report(fs))


def main(argv: list[str]) -> int:
    if not argv:
        overview()
        return 0
    command, *rest = argv
    if command == "demo":
        demo()
        return 0
    if command == "bench":
        from .bench.__main__ import main as bench_main

        return bench_main(rest)
    print(f"unknown subcommand {command!r}; use demo | bench")
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
