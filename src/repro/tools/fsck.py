"""fsck for H2: verify the on-cloud object graph's invariants.

An H2 filesystem *is* a set of flat objects with structural promises
between them.  The checker walks one deployment and verifies, per
account:

* **I1 root integrity** — the account's root `dir:` and `nr:` objects
  exist and parse;
* **I2 ring/record pairing** — every reachable directory has both its
  record and its NameRing, and the record's parent pointer matches the
  tree position;
* **I3 child references** — every live file tuple's content object
  exists, and its size/etag match the tuple's metadata;
* **I4 namespace uniqueness** — no directory namespace appears under
  two parents;
* **I5 replica health** — every reachable object has its full replica
  set on healthy nodes;
* **I6 garbage accounting** — unreachable `dir:`/`nr:`/`f:` objects
  and orphaned `patch:` objects are reported (GC's work list, not an
  error);
* **I7 replica agreement** — all present replicas of a reachable
  object hold the same bytes (etag + timestamp); a crash/recover cycle
  without a repair sweep leaves stale copies, reported here so the
  deterministic-simulation oracle can insist on agreement after quiesce.
* **I8 payload integrity** — every present replica's bytes still match
  the checksum computed when they were written
  (:mod:`repro.simcloud.integrity`); silent bit-rot keeps the etag and
  timestamp intact, so only the checksum can expose it.
* **I9 shard structure** — a sharded ring's manifest parses, every
  listed shard payload exists and parses, each child tuple lives in
  the shard its name hashes to, and no name appears in two shards.
  Manifest digests lagging the payloads are reported separately
  (``stale_manifests``): they are self-healing (GC's compact pass
  rewrites them), not structural damage.

The checker is read-only and runs in background-accounted time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import formatter, shards
from ..core.namering import KIND_DIR, NameRing
from ..core.namespace import (
    Namespace,
    directory_key,
    file_key,
    namering_key,
    ring_shard_key,
)
from ..simcloud.errors import CorruptObjectError, ObjectNotFound
from ..simcloud.integrity import verify_record


@dataclass
class FsckReport:
    """Findings of one check run."""

    accounts_checked: int = 0
    directories_checked: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)
    garbage: list[str] = field(default_factory=list)
    degraded_replicas: list[str] = field(default_factory=list)
    divergent_replicas: list[str] = field(default_factory=list)
    corrupt_replicas: list[str] = field(default_factory=list)
    #: manifests whose stored digests lag the shard payloads -- GC's
    #: compact pass heals these, so they are advisory, not errors.
    stale_manifests: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.errors)} ERROR(S)"
        return (
            f"fsck: {status} -- {self.accounts_checked} accounts, "
            f"{self.directories_checked} dirs, {self.files_checked} files; "
            f"{len(self.garbage)} garbage objects, "
            f"{len(self.degraded_replicas)} degraded replicas, "
            f"{len(self.divergent_replicas)} divergent replicas, "
            f"{len(self.corrupt_replicas)} corrupt replicas, "
            f"{len(self.stale_manifests)} stale manifests"
        )


class H2Fsck:
    """Offline consistency checker for one deployment."""

    def __init__(self, middleware):
        self._mw = middleware
        self._store = middleware.store

    def check(self) -> FsckReport:
        return self._mw.background(self._check)

    # ------------------------------------------------------------------
    def _check(self) -> FsckReport:
        report = FsckReport()
        reachable: set[str] = set()
        owners: dict[str, str] = {}  # child dir ns -> parent ns (I4)
        for account in sorted(self._store.accounts):
            report.accounts_checked += 1
            self._check_account(account, report, reachable, owners)
        self._check_garbage(report, reachable)
        return report

    def _check_account(self, account, report, reachable, owners) -> None:
        root = Namespace.root(account)
        if not self._store.exists(directory_key(root)):
            report.errors.append(f"I1 {account}: missing root directory record")
            return
        stack: list[tuple[Namespace, str | None]] = [(root, None)]
        while stack:
            ns, parent_uuid = stack.pop()
            report.directories_checked += 1
            dkey, rkey = directory_key(ns), namering_key(ns)
            reachable.update((dkey, rkey))
            record = self._load_directory(ns, report)
            if record is not None and parent_uuid is not None:
                if record.parent_ns != parent_uuid:
                    report.errors.append(
                        f"I2 {ns}: record parent {record.parent_ns} != tree "
                        f"parent {parent_uuid}"
                    )
            ring = self._load_ring(ns, report, reachable)
            if ring is None:
                continue
            for child in ring.live_children():
                if child.kind == KIND_DIR:
                    if child.ns in owners:
                        report.errors.append(
                            f"I4 namespace {child.ns} linked from both "
                            f"{owners[child.ns]} and {ns.uuid}"
                        )
                        continue
                    owners[child.ns] = ns.uuid
                    stack.append((Namespace(child.ns), ns.uuid))
                else:
                    report.files_checked += 1
                    self._check_file(ns, child, report, reachable)
            self._check_replicas(dkey, report)
            self._check_replicas(rkey, report)

    def _load_directory(self, ns, report):
        try:
            data = self._store.get(directory_key(ns)).data
            return formatter.loads_directory(data)
        except ObjectNotFound:
            report.errors.append(f"I2 {ns}: directory record missing")
        except CorruptObjectError:
            report.corrupt_replicas.append(
                f"I8 {ns}: directory record unrecoverable (no verified replica)"
            )
        except formatter.FormatError as exc:
            report.errors.append(f"I2 {ns}: unparseable record ({exc})")
        return None

    def _load_ring(self, ns, report, reachable):
        try:
            data = self._store.get(namering_key(ns)).data
        except ObjectNotFound:
            report.errors.append(f"I2 {ns}: NameRing missing")
            return None
        except CorruptObjectError:
            report.corrupt_replicas.append(
                f"I8 {ns}: NameRing unrecoverable (no verified replica)"
            )
            return None
        if formatter.is_manifest(data):
            return self._load_sharded_ring(ns, data, report, reachable)
        try:
            return formatter.loads_ring(data)
        except formatter.FormatError as exc:
            report.errors.append(f"I2 {ns}: unparseable NameRing ({exc})")
        return None

    def _load_sharded_ring(self, ns, data, report, reachable):
        """I9: verify shard structure and reassemble the full ring."""
        try:
            manifest = formatter.loads_manifest(data)
        except formatter.FormatError as exc:
            report.errors.append(f"I2 {ns}: unparseable manifest ({exc})")
            return None
        count = manifest.shard_count
        merged: dict = {}
        seen: dict[str, int] = {}
        for k in range(count):
            key = ring_shard_key(ns, manifest.epoch, k)
            reachable.add(key)
            try:
                payload = self._store.get(key).data
            except ObjectNotFound:
                report.errors.append(f"I9 {ns}: shard {k}/{count} missing")
                continue
            except CorruptObjectError:
                report.corrupt_replicas.append(
                    f"I8 {key}: shard unrecoverable (no verified replica)"
                )
                continue
            try:
                shard = formatter.loads_shard(payload)
            except formatter.FormatError as exc:
                report.errors.append(
                    f"I9 {ns}: unparseable shard {k} ({exc})"
                )
                continue
            if shards.digest_of(shard) != manifest.digests[k]:
                report.stale_manifests.append(
                    f"{ns}: manifest digest lags shard {k}"
                )
            for name, child in shard.children.items():
                if shards.shard_of(name, count) != k:
                    report.errors.append(
                        f"I9 {ns}: {name!r} misplaced in shard {k} "
                        f"(hashes to {shards.shard_of(name, count)})"
                    )
                if name in seen:
                    report.errors.append(
                        f"I9 {ns}: {name!r} present in shards "
                        f"{seen[name]} and {k}"
                    )
                    continue
                seen[name] = k
                merged[name] = child
            self._check_replicas(key, report)
        return NameRing(children=merged)

    def _check_file(self, ns, child, report, reachable) -> None:
        key = file_key(ns, child.name)
        reachable.add(key)
        try:
            info = self._store.head(key)
        except ObjectNotFound:
            report.errors.append(
                f"I3 {ns}::{child.name}: content object missing"
            )
            return
        if info.size != child.size:
            report.errors.append(
                f"I3 {ns}::{child.name}: tuple size {child.size} != "
                f"object size {info.size}"
            )
        if child.etag and info.etag != child.etag:
            report.errors.append(f"I3 {ns}::{child.name}: etag mismatch")
        self._check_replicas(key, report)

    def _check_replicas(self, key, report) -> None:
        present, expected = self._store.replica_health(key)
        if present < expected:
            report.degraded_replicas.append(f"I5 {key}: {present}/{expected}")
        # I7: all present replicas must agree byte-for-byte.
        # I8: each one must also still match its write-time checksum --
        # bit-rot leaves etag and timestamp intact, so agreement alone
        # cannot catch it.
        etags = set()
        for node_id in self._store.ring.nodes_for(key):
            node = self._store.nodes[node_id]
            if node.is_down:
                continue
            record = node.peek(key)
            if record is not None:
                etags.add(record.etag)
                if not verify_record(record):
                    report.corrupt_replicas.append(
                        f"I8 {key}: checksum mismatch on node {node_id}"
                    )
        if len(etags) > 1:
            report.divergent_replicas.append(
                f"I7 {key}: {len(etags)} distinct replica versions"
            )

    def _check_garbage(self, report, reachable) -> None:
        protected = {
            patch.object_name
            for fd in self._mw.fd_cache.dirty_descriptors()
            for patch in fd.chain.patches
        }
        for name in sorted(self._store.names()):
            if name in reachable or name in protected:
                continue
            if name.startswith(("dir:", "nr:", "f:", "patch:")):
                report.garbage.append(name)
