"""`repro.tools` -- operational tooling on top of the shared FS API.

Cross-system migration (Swift -> H2Cloud adoption, H2Cloud -> Cumulus
backup/restore) with equivalence verification, and an H2 fsck that
audits the on-cloud object graph's invariants.
"""

from .fsck import FsckReport, H2Fsck
from .migrate import MigrationReport, migrate, verify_equivalent

__all__ = [
    "FsckReport",
    "H2Fsck",
    "MigrationReport",
    "migrate",
    "verify_equivalent",
]
