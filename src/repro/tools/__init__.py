"""`repro.tools` -- operational tooling on top of the shared FS API.

Cross-system migration (Swift -> H2Cloud adoption, H2Cloud -> Cumulus
backup/restore) with equivalence verification, an H2 fsck that audits
the on-cloud object graph's invariants, and the replica-repair runbook
(`python -m repro repair`).
"""

from .fsck import FsckReport, H2Fsck
from .migrate import MigrationReport, migrate, verify_equivalent
from .repair import repair_and_verify, run_repair

__all__ = [
    "FsckReport",
    "H2Fsck",
    "MigrationReport",
    "migrate",
    "repair_and_verify",
    "run_repair",
    "verify_equivalent",
]
