"""Operator-facing replica repair (the ``python -m repro repair`` hook).

Thin CLI wrapper over :class:`~repro.simcloud.repair.RepairSweeper`:
run a sweep against a deployment's object store, print what it found
and fixed, and (optionally) follow up with an fsck so the operator sees
the cluster go from degraded to CLEAN in one command.
"""

from __future__ import annotations

from ..simcloud.repair import RepairReport, RepairSweeper


def run_repair(store, verbose: bool = True) -> RepairReport:
    """One repair sweep over ``store``; prints the report when verbose."""
    report = RepairSweeper(store).sweep()
    if verbose:
        print(report.summary())
        for name in report.unrecoverable:
            print(f"  UNRECOVERABLE {name}")
    return report


def repair_and_verify(fs, verbose: bool = True):
    """Sweep an H2Cloud deployment, then fsck it; returns both reports.

    The natural post-outage runbook: heal replication first, then audit
    the object graph to confirm the cluster is structurally sound.
    """
    from .fsck import H2Fsck

    repair_report = run_repair(fs.store, verbose=verbose)
    fsck_report = H2Fsck(fs.middlewares[0]).check()
    if verbose:
        print(fsck_report.summary())
    return repair_report, fsck_report
