"""Cross-system migration: move a whole filesystem between backends.

Because every system in this repository -- H2Cloud and all eight
Table-1 baselines -- speaks the same filesystem API, a tree can be
walked out of one and written into another.  That covers the paper's
operational stories in both directions:

* **adopting H2Cloud**: migrate an existing Swift pseudo-filesystem
  (or a two-cloud DP deployment) into a single object cloud;
* **backup/restore**: H2Cloud -> CompressedSnapshotFS is precisely a
  Cumulus backup; the reverse is a restore.

Migration runs on whatever clusters the two filesystems live on, so
the simulated cost of a migration is itself measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.namespace import join


@dataclass(frozen=True)
class MigrationReport:
    """What one migration moved."""

    directories: int
    files: int
    logical_bytes: int
    elapsed_us: int


def migrate(src, dst, top: str = "/") -> MigrationReport:
    """Copy the subtree at ``top`` from ``src`` into ``dst``.

    Directories are created top-down; file bodies are read from the
    source and written verbatim (sparse payloads included).  The
    destination must not already contain colliding entries -- use a
    fresh account for a restore.  Returns counts and the simulated
    time spent across both clusters.
    """
    start = src.clock.now_us + dst.clock.now_us
    directories = files = logical = 0
    for dirpath, dirnames, filenames in src.walk(top):
        for name in dirnames:
            dst.makedirs(join(dirpath if dirpath != "/" else "/", name))
            directories += 1
        for name in filenames:
            full = join(dirpath if dirpath != "/" else "/", name)
            data = src.read(full)
            dst.write(full, data)
            files += 1
            logical += len(data)
    if hasattr(dst, "pump"):
        dst.pump()
    elapsed = (src.clock.now_us + dst.clock.now_us) - start
    return MigrationReport(
        directories=directories,
        files=files,
        logical_bytes=logical,
        elapsed_us=elapsed,
    )


def verify_equivalent(a, b, top: str = "/") -> bool:
    """True when the two filesystems hold the identical logical tree."""
    from ..testing import snapshot_of

    return snapshot_of(a, top) == snapshot_of(b, top)
