"""The H2Middleware (paper §4.2): the component that embodies H2.

One middleware wraps one (conceptual) Swift proxy server.  Toward user
clients it exposes the Inbound API -- account, directory and file
operations; toward the object storage cloud it acts as a client issuing
PUT/GET/DELETE/HEAD/COPY (the Outbound API, here simply the
:class:`~repro.simcloud.object_store.ObjectStore` facade).  Internally
it wires together the modules of Figure 6: the H2 Lookup, the
Formatter, and the NameRing Maintenance module (File Descriptor Cache,
Background Merger, Gossip Arrangement).

Cost accounting convention: everything a client waits for runs on the
foreground clock; merger and gossip work is measured and booked to
``store.ledger.background_us`` (the paper reports client-visible
operation time, with NameRing maintenance asynchronous behind it).
With ``auto_merge=True`` (the write-through default used by the
benchmarks) the patch submitted by a mutation is merged inline, so the
client-visible cost of MKDIR et al. includes the merge round trip --
this is what lands H2Cloud's MKDIR in the paper's 150-200 ms band.
"""

from __future__ import annotations

import functools
from bisect import bisect_right
from dataclasses import dataclass, field

from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..simcloud.clock import Timestamp
from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    ObjectNotFound,
    PathNotFound,
    PreconditionFailed,
    QuorumError,
)
from ..simcloud.object_store import ObjectStore
from . import formatter, shards
from .descriptor import FileDescriptor, FileDescriptorCache
from .formatter import DirectoryRecord
from .gossip import GossipNetwork, Rumor
from .lookup import H2Lookup, Resolution
from .namering import KIND_DIR, KIND_FILE, Child, NameRing
from .namespace import (
    Namespace,
    NamespaceAllocator,
    directory_key,
    file_key,
    namering_key,
    parse_decorated,
    split_path,
)
from .patch import Patch, PatchCounter, PatchGroup


@dataclass(frozen=True)
class H2Config:
    """Behavioural knobs of one middleware."""

    auto_merge: bool = True  # merge each patch inline (write-through)
    compact_on_use: bool = True  # strip tombstones when a ring is used
    fd_cache_capacity: int = 4096
    degraded_reads: bool = True  # serve stale rings when the store is out
    observe: bool = True  # collect metrics (False => no-op registry)
    # --- traffic-reduction flags (docs/PERFORMANCE.md), all off by
    # default so ablation benchmarks can compare both sides and the
    # committed DST corpus digests stay byte-identical flags-off ---
    negative_cache: bool = False  # remember store-confirmed misses
    group_commit: bool = False  # coalesce same-ring patches per window
    group_commit_window_us: int = 500_000  # sim-clock group window
    gossip_digests: bool = False  # rumor coalescing + digest anti-entropy
    memoize_serialization: bool = False  # elide PUTs of byte-identical rings
    # --- sharded NameRings (docs/PROTOCOL.md §11), default-off so the
    # committed DST corpus digests stay byte-identical flags-off ---
    sharded_rings: bool = False  # split giant rings into hashed shards
    shard_split_threshold: int = 1024  # tuples before a ring splits
    shard_merge_threshold: int = 256  # tuples before shards collapse
    shard_target_entries: int = 512  # aimed-for tuples per shard

    def with_traffic_flags(self) -> "H2Config":
        """This config with every traffic-reduction mechanism enabled."""
        from dataclasses import replace

        return replace(
            self,
            negative_cache=True,
            group_commit=True,
            gossip_digests=True,
            memoize_serialization=True,
        )

    def with_sharded_rings(self) -> "H2Config":
        """This config with sharded NameRings enabled."""
        from dataclasses import replace

        return replace(self, sharded_rings=True)

    def shard_policy(self):
        """The :class:`~repro.core.shards.ShardPolicy` these knobs spell."""
        from .shards import ShardPolicy

        return ShardPolicy(
            enabled=self.sharded_rings,
            split_threshold=self.shard_split_threshold,
            merge_threshold=self.shard_merge_threshold,
            target_entries=self.shard_target_entries,
        )


@dataclass(frozen=True)
class Entry:
    """One child in a directory listing / stat result."""

    name: str
    kind: str
    size: int = 0
    etag: str = ""
    ns: str | None = None
    modified: Timestamp = Timestamp.ZERO


def observed(op_name: str, path_arg: int | None = None):
    """Instrument an Inbound API method: one span + one latency sample.

    ``path_arg`` names the positional argument (0-based, after
    ``self``) whose value is worth tagging on the span -- usually the
    path.  When both tracing and metrics are disabled the wrapper is a
    single extra call frame.
    """

    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            # Scope the store's request origin to this middleware for
            # the whole operation, so the partition matrix can judge
            # every node round-trip against *this* node's links.  Saved
            # and restored (not cleared) because operations nest --
            # e.g. COPY calling read+write through the same facade.
            store = self.store
            prev_origin = store.origin
            store.origin = self.node_id
            try:
                tracer = self.tracer
                if tracer.noop and not self.config.observe:
                    return method(self, *args, **kwargs)
                tags: dict[str, object] = {"node": self.node_id}
                if path_arg is not None and len(args) > path_arg:
                    tags["path"] = args[path_arg]
                with tracer.span(f"op.{op_name}", tags=tags):
                    return self.monitor.timed(
                        op_name, lambda: method(self, *args, **kwargs)
                    )
            finally:
                store.origin = prev_origin

        return wrapper

    return decorate


class H2Middleware:
    """One H2 proxy node: Inbound API over the flat object store."""

    def __init__(
        self,
        node_id: int,
        store: ObjectStore,
        config: H2Config | None = None,
        network: GossipNetwork | None = None,
        tracer: Tracer | None = None,
    ):
        self.node_id = node_id
        self.store = store
        self.clock = store.clock
        self.config = config or H2Config()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = MetricsRegistry() if self.config.observe else NULL_REGISTRY
        self.fd_cache = FileDescriptorCache(self.config.fd_cache_capacity)
        self.allocator = NamespaceAllocator(node_id, self.clock)
        self.patch_counter = PatchCounter(node_id)
        self.lookup = H2Lookup(self)
        # Imported here to avoid a circular import at module load.
        from .merger import BackgroundMerger
        from .monitoring import Monitor

        self.merger = BackgroundMerger(self)
        self.network = network
        if network is not None:
            network.join(self)
        self._patches_submitted = self.metrics.counter(
            "maintenance.patches_submitted"
        )
        self._degraded_serves = self.metrics.counter("degraded.serves")
        # Traffic-reduction telemetry (docs/PERFORMANCE.md).  Counters
        # never touch the sim clock, so incrementing them is always
        # digest-safe; ``traffic.revalidations`` in particular counts
        # even with every flag off (it measures the §3.2 double-GET the
        # negative cache exists to elide).
        self._negative_hits = self.metrics.counter("traffic.negative_hits")
        self._revalidations = self.metrics.counter("traffic.revalidations")
        self._group_commits = self.metrics.counter("traffic.group_commits")
        self._patches_coalesced = self.metrics.counter(
            "traffic.patches_coalesced"
        )
        self._put_elisions = self.metrics.counter("traffic.put_elisions")
        self._digest_skips = self.metrics.counter("traffic.digest_skips")
        # Sharded-ring telemetry: layout transitions plus the per-shard
        # write-back's touched/skipped split (docs/PROTOCOL.md §11).
        self.shard_policy = self.config.shard_policy()
        self._shard_counters = {
            "split": self.metrics.counter("shard.splits"),
            "collapse": self.metrics.counter("shard.collapses"),
            "reshard": self.metrics.counter("shard.reshards"),
            "put": self.metrics.counter("shard.shard_puts"),
            "skip": self.metrics.counter("shard.shard_skips"),
        }
        self._shard_gets = self.metrics.counter("shard.shard_gets")
        self.monitor = Monitor(self)
        self._merge_block = 0  # §3.3.3b: >0 while a file stream is open
        # Elastic membership: the cluster epoch this middleware has
        # acted on.  Epoch changes invalidate placement-derived hints
        # (the negative cache); see observe_epoch.
        self._membership = getattr(store, "membership", None)
        self._seen_epoch = self._membership.epoch if self._membership else 0

    @property
    def patches_submitted(self) -> int:
        return int(self._patches_submitted.value)

    @property
    def degraded_serves(self) -> int:
        """Ring loads served stale during outages."""
        return int(self._degraded_serves.value)

    # ==================================================================
    # storage-facing plumbing
    # ==================================================================
    def background(self, thunk):
        """Run maintenance work off the client path; book its cost."""
        result, elapsed = self.clock.run_isolated(thunk)
        self.store.ledger.background_us += elapsed
        return result

    def load_ring(self, ns: Namespace, use_cache: bool = True) -> FileDescriptor:
        """The descriptor for ``ns``, loading the stored ring on a miss.

        **Degraded read mode**: when the ring GET exhausts its retries
        (every replica unreachable -- a :class:`QuorumError`, not a
        clean miss), the last-known ring in the FD cache is served
        flagged ``stale`` instead of failing LIST/resolve outright.
        Stale descriptors re-probe the store on every use, so freshness
        returns the moment the outage ends.
        """
        if self._membership is not None:
            self.observe_epoch(self._membership.epoch)
        fd = self.fd_cache.get_or_create(ns)
        if fd.loaded and use_cache and not fd.stale:
            return fd
        try:
            loaded = shards.read_stored(self.store, ns, fan_out=True)
            stored = loaded.ring
        except ObjectNotFound:
            raise PathNotFound(f"<namespace {ns}>") from None
        except QuorumError:
            if self.config.degraded_reads and fd.loaded:
                fd.stale = True
                self._degraded_serves.inc()
                self.tracer.event(
                    "degraded.read", tags={"node": self.node_id, "ns": str(ns)}
                )
                return fd
            raise
        fd.layout = loaded.manifest
        if loaded.manifest is not None:
            self._shard_gets.inc(loaded.manifest.shard_count)
        # Merge, don't replace: local unmerged updates must survive.
        merged = fd.ring.merge(stored)
        if merged is not fd.ring:
            fd.ring = merged
            # Fresh store state arrived: drop cached misses wholesale.
            # (A no-op flag-off -- the set only fills when the negative
            # cache is enabled.)
            if fd.negative:
                fd.negative.clear()
        fd.loaded = True
        fd.stale = False
        return fd

    def store_ring(self, fd: FileDescriptor) -> None:
        """Full-state write of the cached ring, layout-aware.

        With sharding off and a monolithic layout this is the classic
        single PUT; otherwise :func:`repro.core.shards.write_stored`
        splits/collapses/reshards per policy and rewrites only the
        shards whose digest changed.
        """
        fd.layout = shards.write_stored(
            self.store,
            fd.ns,
            fd.ring,
            self.shard_policy,
            fd.layout,
            self._shard_counters,
        )
        fd.merged_version = fd.ring.version
        fd.dirty_names.clear()

    def store_ring_merged(
        self,
        fd: FileDescriptor,
        extra: NameRing | None = None,
        strict: bool = False,
    ) -> None:
        """Read-merge-write a ring whose cached view may lag the store.

        The gossip paths (rumor absorption, anti-entropy pulls) merge a
        *peer's* view into the local cache; writing that result back
        directly would clobber any children only the stored version
        knows about -- e.g. after a cache drop, an absorbed rumor would
        overwrite the stored ring with just the rumor's content, losing
        every other child durably.  Merging the stored version first
        makes the write-back monotone.

        ``extra`` is merged in *after* the stored version -- the
        merger's folded patch chain rides through here so its write
        lands on the same monotone path.  ``strict`` controls the
        outage contract: the gossip callers swallow a :class:`QuorumError`
        (the merge stays cache-only and a later sweep persists it), the
        merger must *not* drain its chain on a failed read, so it
        propagates.  Nothing is mutated before the GET settles either
        way.

        With ``memoize_serialization`` on, a write-back whose serialized
        form is byte-identical to what the store already holds is elided
        entirely (the CRC-memoized dump makes the comparison cheap).

        When the stored layout is sharded, the read-merge-write runs
        *per shard*: only the shards holding locally-changed names
        (``extra``'s children plus ``fd.dirty_names``) are fetched,
        merged and rewritten, and even those are skipped outright when
        the local shard's digest matches the stored manifest's -- a
        one-child merge into an m-entry directory touches one shard,
        not m tuples (docs/PROTOCOL.md §11).
        """
        try:
            record = self.store.get(namering_key(fd.ns))
        except ObjectNotFound:
            record = None
        except QuorumError:
            if strict:
                raise
            return
        if record is not None and formatter.is_manifest(record.data):
            manifest = formatter.loads_manifest(record.data)
            self._merge_write_sharded(fd, manifest, extra, strict)
            return
        stored = formatter.loads_ring(record.data) if record is not None else None
        fd.layout = None
        if stored is not None:
            merged = fd.ring.merge(stored)
            if merged is not fd.ring:
                fd.ring = merged
                if fd.negative:
                    fd.negative.clear()
        if extra is not None:
            fd.ring = fd.ring.merge(extra)
        if (
            self.config.memoize_serialization
            and record is not None
            and formatter.dumps_ring(fd.ring) == record.data
        ):
            # The store already holds these exact bytes: skip the PUT.
            self._put_elisions.inc()
            fd.merged_version = fd.ring.version
            fd.dirty_names.clear()
            return
        self.store_ring(fd)

    def _merge_write_sharded(
        self,
        fd: FileDescriptor,
        manifest,
        extra: NameRing | None,
        strict: bool,
    ) -> None:
        """The sharded read-merge-write behind :meth:`store_ring_merged`.

        Dirty shards are those holding a name from ``extra`` or
        ``fd.dirty_names``.  Per dirty shard: if the local shard's
        digest equals the stored one there is nothing to exchange
        (skip, no GET); otherwise GET, merge both ways (stored tuples
        are absorbed into the cache), and PUT only when the merged
        bytes differ.  Untouched shards keep their stored digests.
        Layout transitions (collapse/reshard) are detected from the
        updated manifest's totals and delegated to a full-state
        :meth:`store_ring`.
        """
        count, epoch = manifest.shard_count, manifest.epoch
        pending = set(fd.dirty_names)
        if extra is not None:
            pending.update(extra.children)
            fd.ring = fd.ring.merge(extra)
        dirty = {shards.shard_of(name, count) for name in pending}
        local = shards.extract_shards(fd.ring, count, dirty)
        digests = list(manifest.digests)
        absorbed: dict[str, Child] = {}
        for k in sorted(dirty):
            local_shard = local[k]
            local_digest = shards.digest_of(local_shard)
            if local_digest == digests[k]:
                # Cache and store agree on this shard: nothing to do.
                self._shard_counters["skip"].inc()
                continue
            key = shards.ring_shard_key(fd.ns, epoch, k)
            try:
                shard_record = self.store.get(key)
                stored_shard = formatter.loads_shard(shard_record.data)
            except ObjectNotFound:
                shard_record, stored_shard = None, NameRing.empty()
            except QuorumError:
                if strict:
                    raise
                return  # partial progress is safe: writes are monotone
            self._shard_gets.inc()
            merged_shard = local_shard.merge(stored_shard)
            absorbed.update(stored_shard.children)
            data = formatter.dumps_shard(merged_shard)
            if shard_record is not None and data == shard_record.data:
                self._shard_counters["skip"].inc()
            else:
                self.store.put(key, data)
                self._shard_counters["put"].inc()
            digests[k] = shards.digest_of(merged_shard)
        if absorbed:
            merged, _ = fd.ring.merge_changes(NameRing(children=absorbed))
            if merged is not fd.ring:
                fd.ring = merged
                if fd.negative:
                    fd.negative.clear()
        new_manifest = formatter.ShardManifest(
            shard_count=count, epoch=epoch, digests=tuple(digests)
        )
        total = new_manifest.total_entries
        policy = self.shard_policy
        if not policy.enabled or policy.should_collapse(total) or (
            policy.desired_count(total) > count
        ):
            # Layout boundary crossed: take the full-state path.  The
            # whole ring must be known first -- the cache may never
            # have seen shards it had no dirty names in.
            try:
                loaded = shards.read_stored(self.store, fd.ns, fan_out=True)
            except ObjectNotFound:
                loaded = None
            except QuorumError:
                if strict:
                    raise
                return  # shards already written are monotone-safe
            if loaded is not None:
                fd.ring = fd.ring.merge(loaded.ring)
                fd.layout = loaded.manifest
            self.store_ring(fd)
        else:
            if new_manifest != manifest:
                self.store.put(
                    namering_key(fd.ns),
                    formatter.dumps_manifest(new_manifest),
                )
            fd.layout = new_manifest
            fd.merged_version = fd.ring.version
            fd.dirty_names.difference_update(pending)
        fd.loaded = True

    def submit_patch(self, ns: Namespace, entries: list[Child]) -> Patch:
        """Phase 1: PUT the patch object and chain it locally.

        With ``auto_merge`` the intra-node merge (Phase 2 step 1) runs
        inline; otherwise it waits for the Background Merger.  Either
        way the gossip announcement happens in :meth:`after_merge`.
        """
        payload = NameRing(children={c.name: c for c in entries})
        if self.config.group_commit:
            return self._submit_grouped(ns, payload)
        with self.tracer.span(
            "patch.submit", tags={"node": self.node_id, "ns": str(ns)}
        ) as span:
            patch = Patch(
                target_ns=ns,
                node_id=self.node_id,
                patch_seq=self.patch_counter.next_seq(ns),
                payload=payload,
                trace=self.tracer.current(),
            )
            span.tag("patch", patch.object_name)
            self.store.put(patch.object_name, patch.to_bytes())
            fd = self.fd_cache.get_or_create(ns)
            fd.chain.append(patch)
            if fd.negative:
                fd.negative.difference_update(payload.children)
            self._patches_submitted.inc()
            if self.config.auto_merge:
                self.merger.merge_ring(ns, foreground=True)
        return patch

    def _submit_grouped(self, ns: Namespace, payload: NameRing) -> Patch:
        """Group-commit submission: coalesce same-ring patches per window.

        The first submission in a window *opens* a group (claiming the
        patch sequence number the eventual object will carry); later
        same-ring submissions inside ``group_commit_window_us`` merge
        their payloads into it -- per-entry timestamps ride along
        unchanged, so the single flushed patch is merge-equivalent to
        the individual patches it replaced.  A submission arriving after
        the window closes flushes the old group first (client-visible:
        the patch PUT amortizes over the whole window).  The group
        counts as dirty state, so the descriptor stays pinned and the
        Background Merger flushes stragglers.
        """
        fd = self.fd_cache.get_or_create(ns)
        if fd.negative:
            fd.negative.difference_update(payload.children)
        now_us = self.clock.now_us
        if (
            fd.group is not None
            and now_us - fd.group.opened_us > self.config.group_commit_window_us
        ):
            self.flush_patch_group(fd)
        with self.tracer.span(
            "patch.submit", tags={"node": self.node_id, "ns": str(ns)}
        ) as span:
            if fd.group is None:
                fd.group = PatchGroup(
                    opened_us=now_us,
                    seq=self.patch_counter.next_seq(ns),
                    payload=payload,
                    trace=self.tracer.current(),
                )
                span.tag("group", "opened")
            else:
                fd.group.payload = fd.group.payload.merge(payload)
                fd.group.absorbed += 1
                self._patches_coalesced.inc()
                span.tag("group", "coalesced")
            self._patches_submitted.inc()
            patch = Patch(
                target_ns=ns,
                node_id=self.node_id,
                patch_seq=fd.group.seq,
                payload=payload,
                trace=self.tracer.current(),
            )
            span.tag("patch", patch.object_name)
        return patch

    def flush_patch_group(
        self, fd: FileDescriptor, merge: bool = True
    ) -> Patch | None:
        """Close an open group: one patch object PUT for the whole window.

        ``merge=False`` is the Background Merger's spelling -- it is
        about to fold the chain itself, so the inline ``auto_merge``
        follow-up would recurse.
        """
        group = fd.group
        if group is None:
            return None
        patch = Patch(
            target_ns=fd.ns,
            node_id=self.node_id,
            patch_seq=group.seq,
            payload=group.payload,
            trace=group.trace,
        )
        with self.tracer.span(
            "patch.group_flush",
            tags={
                "node": self.node_id,
                "ns": str(fd.ns),
                "absorbed": group.absorbed,
            },
            parent=group.trace,
        ) as span:
            span.tag("patch", patch.object_name)
            # PUT before popping the group: on a transient store error
            # the window stays open (and dirty), so the acked updates
            # are retried by the next flush instead of vanishing.
            self.store.put(patch.object_name, patch.to_bytes())
            fd.group = None
            fd.chain.append(patch)
            self._group_commits.inc()
        if merge and self.config.auto_merge:
            self.merger.merge_ring(fd.ns, foreground=True)
        return patch

    def flush_patch_groups(self) -> int:
        """Flush every open group (quiesce / explicit-sync entry point)."""
        flushed = 0
        for fd in self.fd_cache.descriptors():
            if fd.group is not None:
                self.flush_patch_group(fd)
                flushed += 1
        return flushed

    def after_merge(self, fd: FileDescriptor) -> None:
        """Called by the merger once a ring version is written back."""
        if self.network is not None:
            if self._membership is not None:
                self.observe_epoch(self._membership.epoch)
            self.network.announce(
                self.node_id,
                Rumor(
                    ns=fd.ns,
                    origin=self.node_id,
                    ts=fd.local_version,
                    trace=self.tracer.current(),
                    epoch=self._seen_epoch,
                ),
            )

    # ------------------------------------------------------------------
    # elastic membership (epoch-aware placement hints)
    # ------------------------------------------------------------------
    def observe_epoch(self, epoch: int) -> None:
        """Act on a cluster-membership epoch change.

        Negative-cache entries are conservative placement-era hints: an
        absence confirmed under the old epoch's replica set may be
        served from different nodes now, so every cached miss is
        dropped the first time a newer epoch is observed -- whether it
        arrived via a store access or rode in on a gossip rumor.  A
        same-or-older epoch returns immediately (one integer compare,
        so the hot path stays flat).
        """
        if epoch <= self._seen_epoch:
            return
        self._seen_epoch = epoch
        for fd in self.fd_cache.descriptors():
            if fd.negative:
                fd.negative.clear()
        if not self.tracer.noop:
            self.tracer.event(
                "membership.epoch_observed",
                tags={"node": self.node_id, "epoch": epoch},
            )

    # ------------------------------------------------------------------
    # the §3.3.3b blocking rule (used by streaming writes)
    # ------------------------------------------------------------------
    @property
    def merge_blocked(self) -> bool:
        return self._merge_block > 0

    def block_merging(self) -> None:
        self._merge_block += 1

    def unblock_merging(self) -> None:
        if self._merge_block <= 0:
            raise RuntimeError("unbalanced unblock_merging")
        self._merge_block -= 1

    def open_write(self, account: str, path: str):
        """Open an I/O stream for a (large) file write (paper §3.3.3b)."""
        from .streams import FileWriter

        return FileWriter(self, account, path)

    def next_timestamp(self) -> Timestamp:
        # One logical timestamp source per deployment keeps LWW sane:
        # the store's factory is shared by all middlewares on a cluster.
        return self.store.timestamps.next()

    # ==================================================================
    # gossip handlers (Phase 2 step 2)
    # ==================================================================
    def on_gossip(self, rumor: Rumor) -> bool:
        """Merge the origin's version of the ring; True => forward.

        Loopback avoidance: when our local version timestamp is already
        >= the rumor's, our view is at least as new -- abort forwarding.

        Invalidation rumors (account teardown) drop the local descriptor
        instead; forwarding continues only while there was something to
        drop, so the broadcast dies out once every cache is clean.
        """
        # The fetch-and-merge below hits the object store on *this*
        # node's behalf; scope the request origin so a middleware
        # partitioned from the cloud cannot absorb rumors through it.
        store = self.store
        prev_origin = store.origin
        store.origin = self.node_id
        try:
            return self._on_gossip(rumor)
        finally:
            store.origin = prev_origin

    def _on_gossip(self, rumor: Rumor) -> bool:
        if rumor.epoch > self._seen_epoch:
            # The announcer saw a newer cluster epoch than we have:
            # learn it from the rumor rather than waiting for our next
            # store access.
            self.observe_epoch(rumor.epoch)
        if rumor.invalidate:
            with self.tracer.span(
                "gossip.invalidate",
                tags={"node": self.node_id, "ns": str(rumor.ns)},
                parent=rumor.trace,
            ):
                return self.fd_cache.purge(rumor.ns)
        fd = self.fd_cache.get_or_create(rumor.ns)
        if fd.local_version >= rumor.ts:
            return False

        def absorb() -> bool:
            origin = self.network.peer(rumor.origin)
            remote = origin.local_ring_copy(rumor.ns)
            from_store = remote is None
            if from_store:
                # The origin evicted the ring after announcing; the
                # stored version is at least as new (the merger writes
                # back before announcing), so absorb from the store.
                try:
                    loaded = shards.read_stored(
                        self.store, rumor.ns, fan_out=True
                    )
                except (ObjectNotFound, QuorumError):
                    return False  # ring gone or unreachable: rumor dies
                remote = loaded.ring
                fd.layout = loaded.manifest
            merged, changed_names = fd.ring.merge_changes(remote)
            changed = bool(changed_names)
            fd.ring = merged
            fd.loaded = True
            if changed and fd.negative:
                # Remote state arrived: cached misses may now be stale.
                fd.negative.clear()
            if changed and not from_store:
                # Track which names the peer advanced so a sharded
                # write-back touches only their shards.
                fd.dirty_names.update(changed_names)
                self.store_ring_merged(fd)
            return changed

        # Forward only if the rumor taught us something.  Comparing
        # timestamps alone livelocks: ring versions are not monotone
        # (compaction strips tombstones, which can *lower* the max child
        # timestamp), so a node could chase an unreachable ``rumor.ts``
        # and reflood the same rumor forever.  Requiring strict progress
        # bounds every rumor's life; anti-entropy backstops convergence.
        with self.tracer.span(
            "gossip.apply",
            tags={
                "node": self.node_id,
                "ns": str(rumor.ns),
                "origin": rumor.origin,
            },
            parent=rumor.trace,
        ) as span:
            changed = self.background(absorb)
            span.tag("changed", changed)
        return changed

    def local_ring_copy(self, ns: Namespace) -> NameRing | None:
        """Our local version of a ring, for a peer's gossip fetch."""
        fd = self.fd_cache.lookup(ns)
        if fd is None or not fd.loaded:
            return None
        return fd.ring

    def pull_state_from(self, source: "H2Middleware") -> int:
        """Anti-entropy: merge every loaded ring of ``source``; count changes.

        With ``gossip_digests`` on, the pull is digest-first: for each
        of the source's rings the local ``(version, crc)`` pair is
        compared (CRC-32C of the canonical wire form, memoized per ring
        instance) and only *differing* rings are actually shipped and
        merged -- the full-state transfer degenerates to a digest
        exchange when the peers already agree, which after convergence
        is almost always.
        """
        changed = 0
        store = self.store
        prev_origin = store.origin
        store.origin = self.node_id  # write-backs ride this node's links
        try:
            return self._pull_state_from(source)
        finally:
            store.origin = prev_origin

    def _pull_state_from(self, source: "H2Middleware") -> int:
        changed = 0
        with self.tracer.span(
            "gossip.anti_entropy",
            tags={"node": self.node_id, "source": source.node_id},
        ) as span:
            for src_fd in source.fd_cache.descriptors():
                if not src_fd.loaded:
                    continue
                if self.config.gossip_digests:
                    local = self.fd_cache.peek(src_fd.ns)
                    if (
                        local is not None
                        and local.loaded
                        and local.ring.version == src_fd.ring.version
                        and formatter.ring_crc(local.ring)
                        == formatter.ring_crc(src_fd.ring)
                    ):
                        self._digest_skips.inc()
                        continue
                fd = self.fd_cache.get_or_create(src_fd.ns)
                merged, changed_names = fd.ring.merge_changes(src_fd.ring)
                if changed_names:
                    fd.ring = merged
                    fd.loaded = True
                    fd.dirty_names.update(changed_names)
                    if fd.negative:
                        fd.negative.clear()
                    self.background(lambda fd=fd: self.store_ring_merged(fd))
                    changed += 1
            span.tag("refreshed", changed)
        return changed

    # ==================================================================
    # Inbound API: accounts
    # ==================================================================
    @observed("create_account")
    def create_account(self, account: str) -> Namespace:
        root = Namespace.root(account)
        if self.store.exists(directory_key(root)):
            raise AlreadyExists(f"account {account!r}")
        record = DirectoryRecord(
            name="/", ns=root.uuid, parent_ns=None, created=self.next_timestamp()
        )
        self.store.put(directory_key(root), formatter.dumps_directory(record))
        self.store.put(namering_key(root), formatter.dumps_ring(NameRing.empty()))
        self.store.accounts.add(account)
        return root

    @observed("account_exists")
    def account_exists(self, account: str) -> bool:
        return self.store.exists(directory_key(Namespace.root(account)))

    @observed("delete_account")
    def delete_account(self, account: str, force: bool = False) -> None:
        """Remove an account: its root record and ring disappear, the
        tree becomes unreachable, and GC reclaims the objects.

        Refuses to delete a non-empty account unless ``force`` -- the
        web API's guard against fat-fingered tenancy removal.
        """
        root = Namespace.root(account)
        if not self.store.exists(directory_key(root)):
            raise PathNotFound(f"<account {account}>")
        if not force:
            fd = self.load_ring(root, use_cache=False)
            if len(fd.view()) > 0:
                raise DirectoryNotEmpty(f"<account {account}>")
        if self.shard_policy.enabled:
            # The root ring may be a manifest: drop its shard payloads
            # too, not just the nr: object.  (Gated so flag-off runs
            # keep the exact historical request sequence.)
            shards.delete_stored(self.store, root)
        else:
            self.store.delete(namering_key(root), missing_ok=True)
        self.store.delete(directory_key(root), missing_ok=True)
        self.store.accounts.discard(account)
        self.fd_cache.purge(root)
        if self.network is not None:
            # Peer middlewares may hold the dead ring in their FD caches;
            # without this broadcast a later LIST on a peer would serve a
            # descriptor for an account that no longer exists.
            self.network.announce(
                self.node_id,
                Rumor(
                    ns=root,
                    origin=self.node_id,
                    ts=self.next_timestamp(),
                    invalidate=True,
                    trace=self.tracer.current(),
                ),
            )

    # ==================================================================
    # Inbound API: directory operations
    # ==================================================================
    @observed("mkdir", path_arg=1)
    def mkdir(self, account: str, path: str) -> Namespace:
        parent_ns, name = self.lookup.resolve_parent(account, path)
        parent_fd = self.load_ring(parent_ns)
        if parent_fd.view().get(name) is not None:
            raise AlreadyExists(path)
        ns = self.allocator.next()
        created = self.next_timestamp()
        record = DirectoryRecord(
            name=name, ns=ns.uuid, parent_ns=parent_ns.uuid, created=created
        )
        self.store.put(directory_key(ns), formatter.dumps_directory(record))
        self.store.put(namering_key(ns), formatter.dumps_ring(NameRing.empty()))
        self.submit_patch(
            parent_ns,
            [Child(name=name, timestamp=created, kind=KIND_DIR, ns=ns.uuid)],
        )
        return ns

    @observed("rmdir", path_arg=1)
    def rmdir(self, account: str, path: str, recursive: bool = True) -> None:
        """Fake-delete a directory: one patch to the parent ring, O(1).

        The subtree becomes unreachable immediately; physical removal
        is the garbage collector's job (paper §3.3.3a).  With
        ``recursive=False`` an emptiness check (one ring load) guards
        the operation first.
        """
        resolution = self.lookup.resolve(account, path)
        if resolution.is_root:
            raise InvalidPath(path, "cannot remove the root")
        child = resolution.child
        if child.kind != KIND_DIR:
            raise NotADirectory(path)
        if not recursive:
            target_fd = self.load_ring(Namespace(child.ns))
            if len(target_fd.view()) > 0:
                raise DirectoryNotEmpty(path)
        self.submit_patch(
            resolution.parent_ns, [child.tombstone(self.next_timestamp())]
        )

    @observed("move", path_arg=1)
    def move(self, account: str, src: str, dst: str) -> None:
        """MOVE/RENAME: two NameRing patches, O(1) in n (paper Table 1).

        For directories the namespace travels with the entry, so the
        subtree is untouched.  For files the content object is keyed by
        parent namespace, so a same-size server-side copy re-homes it.
        """
        src_res = self.lookup.resolve(account, src)
        if src_res.is_root:
            raise InvalidPath(src, "cannot move the root")
        child = src_res.child
        dst_parent_ns, dst_name = self.lookup.resolve_parent(account, dst)
        dst_parent_fd = self.load_ring(dst_parent_ns)
        if dst_parent_fd.view().get(dst_name) is not None:
            raise AlreadyExists(dst)
        if child.kind == KIND_DIR:
            self._guard_cycle(account, child, dst)
        ts = self.next_timestamp()
        if child.kind == KIND_FILE:
            src_key = file_key(src_res.parent_ns, child.name)
            self.store.copy(src_key, file_key(dst_parent_ns, dst_name))
            moved = Child(
                name=dst_name,
                timestamp=ts,
                kind=KIND_FILE,
                size=child.size,
                etag=child.etag,
            )
        else:
            record = DirectoryRecord(
                name=dst_name,
                ns=child.ns,
                parent_ns=dst_parent_ns.uuid,
                created=ts,
            )
            self.store.put(
                directory_key(Namespace(child.ns)),
                formatter.dumps_directory(record),
            )
            moved = Child(
                name=dst_name, timestamp=ts, kind=KIND_DIR, ns=child.ns
            )
        if dst_parent_ns == src_res.parent_ns:
            # RENAME: one ring, one patch carrying tombstone + insert.
            self.submit_patch(
                src_res.parent_ns, [child.tombstone(ts), moved]
            )
        else:
            self.submit_patch(src_res.parent_ns, [child.tombstone(ts)])
            self.submit_patch(dst_parent_ns, [moved])

    def rename(self, account: str, src: str, dst: str) -> None:
        """RENAME "is in fact a special case of MOVE" (paper §5.3)."""
        self.move(account, src, dst)

    def _guard_cycle(self, account: str, src_child: Child, dst: str) -> None:
        """Refuse to move a directory underneath itself."""
        parent_path = "/" + "/".join(split_path(dst)[:-1])
        if parent_path == "/":
            return
        resolution = self.lookup.resolve(account, parent_path)
        ancestor_uuids = {ns.uuid for ns in resolution.ns_chain}
        if resolution.child is not None and resolution.child.ns:
            ancestor_uuids.add(resolution.child.ns)
        if src_child.ns in ancestor_uuids:
            raise InvalidPath(dst, "destination is inside the moved directory")

    @observed("list", path_arg=1)
    def list_dir(
        self,
        account: str,
        path: str,
        detailed: bool = False,
        marker: str | None = None,
        limit: int | None = None,
    ) -> list[Entry]:
        """LIST: O(1) ring fetch for names, +O(m) HEADs for details.

        ``marker``/``limit`` paginate like Swift's container listings:
        entries strictly after ``marker``, at most ``limit`` of them.
        The ring is fetched whole (one object, or the manifest plus its
        shard payloads when the directory is sharded); the sorted live
        view is memoized per ring instance, so paging through a giant
        directory re-sorts nothing -- each page is a binary search plus
        a slice, and pagination bounds the detailed HEAD fan-out.
        """
        dir_ns = self.lookup.resolve_dir(account, path)
        fd = self.load_ring(dir_ns)
        self._compact_in_use(fd)
        view = fd.view()
        children = view.live_children()
        start = 0
        if marker is not None:
            start = bisect_right(view.live_names(), marker)
        if limit is not None:
            if limit < 0:
                raise InvalidPath(path, "limit must be >= 0")
            children = children[start : start + limit]
        elif start:
            children = children[start:]
        if not detailed:
            return [
                Entry(
                    name=c.name,
                    kind=c.kind,
                    size=c.size,
                    etag=c.etag,
                    ns=c.ns,
                    modified=c.timestamp,
                )
                for c in children
            ]

        def head_of(child: Child):
            if child.kind == KIND_DIR:
                key = directory_key(Namespace(child.ns))
            else:
                key = file_key(dir_ns, child.name)
            try:
                return self.store.head(key)
            except ObjectNotFound:
                return None

        infos = self.store.parallel([lambda c=c: head_of(c) for c in children])
        entries = []
        for child, info in zip(children, infos):
            entries.append(
                Entry(
                    name=child.name,
                    kind=child.kind,
                    size=info.size if info and child.kind == KIND_FILE else child.size,
                    etag=info.etag if info and child.kind == KIND_FILE else child.etag,
                    ns=child.ns,
                    modified=child.timestamp,
                )
            )
        return entries

    @observed("usage", path_arg=1)
    def usage(self, account: str, path: str = "/") -> tuple[int, int, int]:
        """(directories, files, logical bytes) under ``path``.

        File sizes ride in the NameRing tuples, so `du` walks only the
        ring objects -- O(directories), never touching file content.
        """
        dir_ns = self.lookup.resolve_dir(account, path)
        dirs = files = nbytes = 0
        stack = [dir_ns]
        while stack:
            ns = stack.pop()
            fd = self.load_ring(ns)
            for child in fd.view().live_children():
                if child.kind == KIND_DIR:
                    dirs += 1
                    stack.append(Namespace(child.ns))
                else:
                    files += 1
                    nbytes += child.size
        return dirs, files, nbytes

    @observed("copy", path_arg=1)
    def copy(self, account: str, src: str, dst: str) -> int:
        """COPY: O(n) object copies; returns the number of objects copied.

        Directories get fresh namespaces (a copy is a new subtree);
        file bodies move with server-side COPY over the data lanes.
        """
        src_res = self.lookup.resolve(account, src)
        dst_parent_ns, dst_name = self.lookup.resolve_parent(account, dst)
        dst_parent_fd = self.load_ring(dst_parent_ns)
        if dst_parent_fd.view().get(dst_name) is not None:
            raise AlreadyExists(dst)
        ts = self.next_timestamp()
        if src_res.child is not None and src_res.child.kind == KIND_FILE:
            self.store.copy(
                file_key(src_res.parent_ns, src_res.child.name),
                file_key(dst_parent_ns, dst_name),
            )
            self.submit_patch(
                dst_parent_ns,
                [
                    Child(
                        name=dst_name,
                        timestamp=ts,
                        kind=KIND_FILE,
                        size=src_res.child.size,
                        etag=src_res.child.etag,
                    )
                ],
            )
            return 1
        if src_res.is_root:
            raise InvalidPath(src, "cannot copy the root onto a child")
        copied = self._copy_tree(src_res.dir_ns, dst_parent_ns, dst_name, ts)
        return copied

    def _copy_tree(
        self,
        src_ns: Namespace,
        dst_parent_ns: Namespace,
        dst_name: str,
        ts: Timestamp,
    ) -> int:
        new_ns = self.allocator.next()
        record = DirectoryRecord(
            name=dst_name, ns=new_ns.uuid, parent_ns=dst_parent_ns.uuid, created=ts
        )
        self.store.put(directory_key(new_ns), formatter.dumps_directory(record))
        src_fd = self.load_ring(src_ns)
        children = src_fd.view().live_children()
        copies = []
        new_children: dict[str, Child] = {}
        copied = 1  # the directory record itself
        for child in children:
            if child.kind == KIND_FILE:
                copies.append(
                    lambda c=child: self.store.copy(
                        file_key(src_ns, c.name), file_key(new_ns, c.name)
                    )
                )
                new_children[child.name] = Child(
                    name=child.name,
                    timestamp=ts,
                    kind=KIND_FILE,
                    size=child.size,
                    etag=child.etag,
                )
            else:
                copied += self._copy_tree(
                    Namespace(child.ns), new_ns, child.name, ts
                )
                # _copy_tree patched new_ns's ring via submit_patch below;
                # fetch the allocated namespace from our own ring instead
                # of tracking return values: simpler to re-read after.
        if copies:
            self.store.parallel(copies, lanes=self.store.latency.data_concurrency)
            copied += len(copies)
        # Write the new ring in one shot: a fresh subtree has no
        # concurrent writers, so a direct PUT (not a patch per child)
        # is both faithful and O(1) in ring round trips.
        new_fd = self.fd_cache.get_or_create(new_ns)
        new_fd.ring = new_fd.ring.merge(NameRing(children=new_children))
        new_fd.loaded = True
        self.store_ring(new_fd)
        self.submit_patch(
            dst_parent_ns,
            [Child(name=dst_name, timestamp=ts, kind=KIND_DIR, ns=new_ns.uuid)],
        )
        return copied

    def _compact_in_use(self, fd: FileDescriptor) -> None:
        """Paper §3.3.2: really remove Deleted tuples when the ring is used.

        Guarded so compaction never races an in-flight rumor or a dirty
        chain that still references the ring (resurrection hazard).
        """
        if not self.config.compact_on_use or not fd.ring.needs_compaction:
            return
        if fd.stale:
            # Degraded serve: the store is unreachable for this ring, so
            # the write-back would fail (and the view may lag anyway).
            return
        if self.network is not None:
            if not self.network.quiet_for(fd.ns):
                return
            for peer in self.network.members:
                peer_fd = peer.fd_cache.lookup(fd.ns)
                if peer is not self and peer_fd is not None and peer_fd.dirty:
                    return
        if fd.dirty:
            return
        fd.ring = fd.ring.compacted()
        self.background(lambda: self._write_back_compacted(fd))

    def _write_back_compacted(self, fd: FileDescriptor) -> None:
        """Persist a compaction without clobbering unseen stored entries.

        The guards in :meth:`_compact_in_use` prove no rumor or dirty
        chain is *in flight*, but they cannot prove the cached ring ever
        *saw* everything the store holds: after message loss, a peer's
        merge may have landed children in the stored ring that this
        node's cache never absorbed.  Blindly PUTting the cached
        compacted ring would durably erase them (the DST corpus case
        pinned by ``tests.dst.tweaks:blind_compaction_write``).  So the
        write-back is read-merge-write like every other background
        write: merge the stored version in, compact *that*, and PUT.
        The cached ring stays as the guards left it -- the served view
        is unchanged either way.
        """
        try:
            loaded = shards.read_stored(self.store, fd.ns)
        except ObjectNotFound:
            # The ring object vanished (account teardown / GC); writing
            # our cached copy back would resurrect it.
            return
        merged = loaded.ring.merge(fd.ring).compacted()
        fd.layout = shards.write_stored(
            self.store,
            fd.ns,
            merged,
            self.shard_policy,
            loaded.manifest,
            self._shard_counters,
        )
        fd.merged_version = fd.ring.version

    # ==================================================================
    # Inbound API: file content operations
    # ==================================================================
    @observed("write", path_arg=1)
    def write_file(
        self, account: str, path: str, data: bytes, if_match: str | None = None
    ) -> Child:
        """WRITE: stream the object, then patch the parent ring.

        Ordering is the paper's §3.3.3b blocking rule: the patch is not
        submitted until the object is fully written, so a ring never
        references bytes that are not durably stored.

        ``if_match`` enables optimistic concurrency for sync clients:
        the write only proceeds if the current entry's etag matches
        (pass ``""`` to require the file not to exist yet).  On
        mismatch :class:`PreconditionFailed` is raised and nothing is
        stored -- the caller re-reads, reconciles, and retries.
        """
        parent_ns, name = self.lookup.resolve_parent(account, path)
        parent_fd = self.load_ring(parent_ns)
        existing = parent_fd.view().get(name)
        if existing is not None and existing.kind == KIND_DIR:
            raise IsADirectory(path)
        if if_match is not None:
            actual = existing.etag if existing is not None else ""
            if actual != if_match:
                raise PreconditionFailed(path, if_match, actual)
        info = self.store.put(
            file_key(parent_ns, name), data, meta={"account": account}
        )
        child = Child(
            name=name,
            timestamp=self.next_timestamp(),
            kind=KIND_FILE,
            size=info.size,
            etag=info.etag,
        )
        self.submit_patch(parent_ns, [child])
        return child

    @observed("write_many", path_arg=1)
    def write_files(
        self, account: str, dir_path: str, items: list[tuple[str, object]]
    ) -> list[Child]:
        """Bulk WRITE: many files into one directory, one patch.

        The protocol allows a patch to carry any number of tuples, so a
        bulk loader (migration, initial sync) streams every object over
        the data lanes and then submits a single patch -- n object PUTs
        plus O(1) ring round trips, instead of n full patch cycles.
        Ordering still honours §3.3.3b: content first, ring second.
        """
        dir_ns = self.lookup.resolve_dir(account, dir_path)
        dir_fd = self.load_ring(dir_ns)
        for name, _ in items:
            existing = dir_fd.view().get(name)
            if existing is not None and existing.kind == KIND_DIR:
                raise IsADirectory(f"{dir_path.rstrip('/')}/{name}")
        infos = self.store.parallel(
            [
                lambda n=name, d=data: self.store.put(
                    file_key(dir_ns, n), d, meta={"account": account}
                )
                for name, data in items
            ],
            lanes=self.store.latency.data_concurrency,
        )
        children = [
            Child(
                name=name,
                timestamp=self.next_timestamp(),
                kind=KIND_FILE,
                size=info.size,
                etag=info.etag,
            )
            for (name, _), info in zip(items, infos)
        ]
        if children:
            self.submit_patch(dir_ns, children)
        return children

    @observed("read", path_arg=1)
    def read_file(self, account: str, path: str) -> bytes:
        """Regular (full-path) file access: O(d) walk then one GET."""
        resolution = self.lookup.resolve(account, path)
        child = resolution.child
        if child is None or child.kind != KIND_FILE:
            raise IsADirectory(path)
        return self.store.get(file_key(resolution.parent_ns, child.name)).data

    @observed("read_range", path_arg=1)
    def read_file_range(
        self, account: str, path: str, offset: int, length: int
    ):
        """Ranged READ: resolve once, transfer only the window."""
        resolution = self.lookup.resolve(account, path)
        child = resolution.child
        if child is None or child.kind != KIND_FILE:
            raise IsADirectory(path)
        return self.store.get_range(
            file_key(resolution.parent_ns, child.name), offset, length
        )

    @observed("read_relative", path_arg=0)
    def read_file_relative(self, rel_path: str) -> bytes:
        """Quick access (paper §3.2): hash ``N02::file1`` directly, O(1)."""
        ns, name = parse_decorated(rel_path)
        try:
            return self.store.get(file_key(ns, name)).data
        except ObjectNotFound:
            raise PathNotFound(rel_path) from None

    def relative_path_of(self, account: str, path: str) -> str:
        """The namespace-decorated relative path for a full file path."""
        resolution = self.lookup.resolve(account, path)
        if resolution.child is None or resolution.child.kind != KIND_FILE:
            raise IsADirectory(path)
        from .namespace import decorate

        return decorate(resolution.parent_ns, resolution.child.name)

    @observed("delete", path_arg=1)
    def delete_file(self, account: str, path: str) -> None:
        """Fake deletion: tombstone the ring tuple; bytes go at GC time."""
        resolution = self.lookup.resolve(account, path)
        child = resolution.child
        if child is None or child.kind != KIND_FILE:
            raise IsADirectory(path)
        self.submit_patch(
            resolution.parent_ns, [child.tombstone(self.next_timestamp())]
        )

    @observed("stat", path_arg=1)
    def stat(self, account: str, path: str) -> Resolution:
        """Pure lookup (Fig 13's measured quantity): resolve, no data I/O."""
        return self.lookup.resolve(account, path)

    @observed("exists", path_arg=1)
    def exists(self, account: str, path: str) -> bool:
        return self.lookup.try_resolve(account, path) is not None
