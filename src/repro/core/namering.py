"""The NameRing: H2's per-directory child list (paper §3.1, §3.3).

A NameRing is the data structure that preserves one level of the
filesystem hierarchy inside the flat object store: for directory
``/bin`` it records the direct children ``cat, bash, nc`` as tuples
``(child_i, t_i)`` -- child name plus a creation/deletion timestamp --
optionally tagged ``Deleted`` (the paper's *fake deletion*,
§3.3.3a).

The merge algorithm (paper §3.3.2) makes the NameRing a last-writer-
wins element map, i.e. a state-based CRDT:

* a child present in both operands: the larger timestamp wins;
* a child present in one operand: it is kept;
* nothing is ever physically removed by a merge -- deletion tombstones
  ride along until :meth:`NameRing.compacted` strips them "when the
  NameRing is in use (e.g. executing operations such as MOVE and
  LIST)".

Commutativity/associativity/idempotence of :func:`merge` -- hence
convergence of the gossip protocol regardless of delivery order -- are
pinned down by property-based tests.

Equal timestamps cannot arise in a live deployment (one shared
:class:`~repro.simcloud.clock.TimestampFactory` per cluster makes every
timestamp globally unique), but merged histories from *different*
deployments, hand-built fixtures and property tests can produce them.
Arbitration must still be deterministic and order-independent, so ties
break by: deleted wins (fake deletion is sticky), then a stable
attribute key -- never "whichever operand was on the left".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

from ..simcloud.clock import Timestamp

KIND_FILE = "file"
KIND_DIR = "dir"


@dataclass(frozen=True)
class Child:
    """One ``(child_i, t_i)`` tuple, with the metadata H2Cloud carries.

    ``ns`` is the child directory's namespace UUID (None for files);
    ``size``/``etag`` describe file children so a names+sizes listing
    does not have to touch the file objects themselves.
    """

    name: str
    timestamp: Timestamp
    kind: str = KIND_FILE
    deleted: bool = False
    ns: str | None = None
    size: int = 0
    etag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (KIND_FILE, KIND_DIR):
            raise ValueError(f"unknown child kind: {self.kind!r}")
        if self.kind == KIND_DIR and not self.deleted and self.ns is None:
            raise ValueError(f"directory child {self.name!r} needs a namespace")

    def tombstone(self, timestamp: Timestamp) -> "Child":
        """The fake-deletion marker that will override this tuple."""
        return replace(self, deleted=True, timestamp=timestamp)

    @property
    def name_hash(self) -> int:
        """CRC-32 of the UTF-8 name -- the sharded-ring placement hash.

        Memoized through ``__dict__`` (frozen dataclass, no
        ``__slots__``) because shard extraction hashes every child of a
        giant directory on each write-back.
        """
        cached = self.__dict__.get("_name_hash")
        if cached is None:
            cached = name_hash(self.name)
            self.__dict__["_name_hash"] = cached
        return cached


def name_hash(name: str) -> int:
    """The shard placement hash for a child name (zlib CRC-32).

    Deliberately *not* the store's CRC-32C: this one is a stdlib
    C-speed call, and the two uses (placement vs integrity) must be
    free to evolve separately.
    """
    return zlib.crc32(name.encode("utf-8"))


def _tie_key(child: Child) -> tuple:
    """Stable attribute key for timestamp-tied LWW arbitration."""
    return (child.kind, child.ns or "", child.size, child.etag)


def _wins(theirs: Child, ours: Child) -> bool:
    """Deterministic LWW arbitration: does ``theirs`` override ``ours``?

    Larger timestamp wins outright.  On a timestamp tie (impossible
    with the shared per-cluster timestamp factory, but reachable in
    synthetic histories) the tombstone wins -- a concurrent deletion
    must not lose to a same-instant insert depending on merge order --
    and a final stable attribute key breaks deleted-vs-deleted and
    live-vs-live ties.  The result is a total order per name, so merge
    stays commutative and associative even with ties present.
    """
    if theirs.timestamp != ours.timestamp:
        return theirs.timestamp > ours.timestamp
    if theirs.deleted != ours.deleted:
        return theirs.deleted
    return _tie_key(theirs) > _tie_key(ours)


@dataclass(frozen=True)
class NameRing:
    """An immutable snapshot of one directory's child list.

    Immutability keeps merging referentially transparent, which is what
    the convergence proofs (and the hypothesis tests) lean on.  All
    mutators return new rings.
    """

    children: dict[str, Child] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction / mutation (functional style)
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "NameRing":
        return cls(children={})

    def with_child(self, child: Child) -> "NameRing":
        """Insert-or-override one tuple (no timestamp arbitration --
        use :meth:`merge` when the winner is not known a priori)."""
        updated = dict(self.children)
        updated[child.name] = child
        return NameRing(children=updated)

    def without(self, name: str) -> "NameRing":
        updated = dict(self.children)
        updated.pop(name, None)
        return NameRing(children=updated)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> Child | None:
        """The live child of this name, or None (tombstones hidden)."""
        child = self.children.get(name)
        if child is None or child.deleted:
            return None
        return child

    def get_any(self, name: str) -> Child | None:
        """Like :meth:`get` but also returns tombstoned entries."""
        return self.children.get(name)

    def live_children(self) -> list[Child]:
        """All non-deleted tuples, alphabetically (the LIST payload).

        The sorted list is memoized on the instance (same ``__dict__``
        trick as the stats memo below) so paging through a giant
        directory doesn't re-sort m entries per LIST page.  Callers
        must treat the result as immutable.
        """
        cached = self.__dict__.get("_live_memo")
        if cached is None:
            cached = sorted(
                (c for c in self.children.values() if not c.deleted),
                key=lambda c: c.name,
            )
            self.__dict__["_live_memo"] = cached
        return cached

    def live_names(self) -> list[str]:
        """Sorted live names, memoized alongside :meth:`live_children`."""
        cached = self.__dict__.get("_live_names_memo")
        if cached is None:
            cached = [c.name for c in self.live_children()]
            self.__dict__["_live_names_memo"] = cached
        return cached

    def tombstones(self) -> list[Child]:
        return sorted(
            (c for c in self.children.values() if c.deleted),
            key=lambda c: c.name,
        )

    def _stats(self) -> tuple[Timestamp, int, int]:
        """``(version, live_count, tombstone_count)`` in one O(m) pass.

        Memoized on the frozen instance exactly like the serialization
        memo (see :func:`repro.core.formatter._memo_of`): rings are
        never mutated and no-op merges return ``self``, so the tuple is
        valid for the instance's whole lifetime.  Gossip digest
        comparison and the monotone-version guards call ``version`` /
        ``len`` in hot loops; without the memo every such touch rescans
        all m children.
        """
        cached = self.__dict__.get("_stats_memo")
        if cached is None:
            version = Timestamp.ZERO
            live = tombstones = 0
            for child in self.children.values():
                if child.deleted:
                    tombstones += 1
                else:
                    live += 1
                if child.timestamp > version:
                    version = child.timestamp
            cached = (version, live, tombstones)
            self.__dict__["_stats_memo"] = cached
        return cached

    @property
    def version(self) -> Timestamp:
        """The ring's logical version: max tuple timestamp.

        This is the ``t_k`` the gossip protocol compares to abort
        forwarding ("if the local timestamp is equal or bigger...").
        """
        return self._stats()[0]

    def __len__(self) -> int:
        return self._stats()[1]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    # ------------------------------------------------------------------
    # the merge algorithm (paper §3.3.2)
    # ------------------------------------------------------------------
    def merge(self, other: "NameRing") -> "NameRing":
        """Merge ``other`` (a patch viewed as a virtual NameRing) into self.

        Per child: both sides present -> :func:`_wins` arbitrates (larger
        timestamp, deterministic tie-break); one side only -> inserted.
        Never removes anything.  Returns ``self`` unchanged (same
        instance) when ``other`` contributes nothing -- stable identity
        keeps the serialization memo valid across no-op merges.
        """
        return self.merge_changes(other)[0]

    def merge_changes(
        self, other: "NameRing"
    ) -> tuple["NameRing", tuple[str, ...]]:
        """:meth:`merge`, also reporting which names ``other`` changed.

        The change set is what sharded write-back needs for dirty-shard
        tracking: a gossip absorb that advanced three names must later
        touch only the shards those three names hash to.
        """
        updates: dict[str, Child] = {}
        for name, theirs in other.children.items():
            ours = self.children.get(name)
            if ours is None or (theirs != ours and _wins(theirs, ours)):
                updates[name] = theirs
        if not updates:
            return self, ()
        merged = dict(self.children)
        merged.update(updates)
        return NameRing(children=merged), tuple(updates)

    def compacted(self) -> "NameRing":
        """Physically drop tombstones -- the deferred "real" removal."""
        if not self.needs_compaction:
            return self
        return NameRing(
            children={
                name: c for name, c in self.children.items() if not c.deleted
            }
        )

    @property
    def needs_compaction(self) -> bool:
        return self._stats()[2] > 0


def merge(a: NameRing, b: NameRing) -> NameRing:
    """Symmetric module-level spelling of :meth:`NameRing.merge`."""
    return a.merge(b)


def merge_all(rings: list[NameRing]) -> NameRing:
    """Fold a patch chain into one "big" ring (paper's intra-node step)."""
    result = NameRing.empty()
    for ring in rings:
        result = result.merge(ring)
    return result
