"""The Formatter module (paper §4.4): "stringifying" H2 data to objects.

An object storage cloud only hosts byte blobs, so NameRings, patches
and directory records must be serialized to ASCII strings before they
can be PUT.  The paper's Formatter sorts NameRing tuples alphabetically
by name and packs them "one after another"; this implementation does
the same with a line-oriented, versioned, escape-safe format so that
arbitrary (printable *or* hostile) file names round-trip exactly.

Wire formats
------------
NameRing / patch (patches share the NameRing format, §3.3.2)::

    H2NR 1                         | H2PATCH 1
    <name>|<ts>|<kind>|<D or ->|<ns or ->|<size>|<etag>
    ...sorted by name...

Directory record::

    H2DIR 1
    name <escaped-name>
    ns <uuid>
    parent <uuid or ->
    created <ts>
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import quote as _quote
from urllib.parse import unquote as _unquote

from ..simcloud.clock import Timestamp
from ..simcloud.integrity import crc32c
from .namering import Child, NameRing

NAMERING_MAGIC = "H2NR"
PATCH_MAGIC = "H2PATCH"
DIRECTORY_MAGIC = "H2DIR"
FORMAT_VERSION = 1


class FormatError(ValueError):
    """The bytes do not parse as the expected H2 wire format."""


# ----------------------------------------------------------------------
# escaping: '|', newlines and non-ASCII are percent-encoded (UTF-8),
# keeping every serialized object pure ASCII as §4.4 requires
# ----------------------------------------------------------------------
_SAFE = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._~ ,:;@()[]{}=+!#$&'"


def escape(text: str) -> str:
    return _quote(text, safe=_SAFE)


def unescape(text: str) -> str:
    try:
        return _unquote(text, errors="strict")
    except UnicodeDecodeError as exc:
        raise FormatError(f"bad escape sequence in {text!r}") from exc


# ----------------------------------------------------------------------
# NameRing / patch payloads
# ----------------------------------------------------------------------
def _memo_of(ring: NameRing) -> dict:
    """Per-instance serialization memo (traffic mechanism 4).

    NameRing is a frozen dataclass without ``__slots__``, so each
    instance still owns a ``__dict__``; writing to it directly bypasses
    the frozen ``__setattr__`` without weakening immutability of the
    *logical* value -- rings are never mutated, so a dump computed once
    is valid for the instance's whole lifetime.  Merge returns ``self``
    on no-op merges, which is what makes the memo pay off: hot rings
    keep their identity (and memo) across gossip/merge churn.
    """
    memo = ring.__dict__.get("_wire_memo")
    if memo is None:
        memo = {}
        ring.__dict__["_wire_memo"] = memo
    return memo


def dumps_ring(ring: NameRing, magic: str = NAMERING_MAGIC) -> bytes:
    memo = _memo_of(ring)
    cached = memo.get(magic)
    if cached is not None:
        return cached
    lines = [f"{magic} {FORMAT_VERSION}"]
    for child in sorted(ring.children.values(), key=lambda c: c.name):
        lines.append(
            "|".join(
                [
                    escape(child.name),
                    str(child.timestamp),
                    child.kind,
                    "D" if child.deleted else "-",
                    child.ns if child.ns is not None else "-",
                    str(child.size),
                    child.etag or "-",
                ]
            )
        )
    data = ("\n".join(lines) + "\n").encode("ascii", errors="strict")
    memo[magic] = data
    return data


def ring_crc(ring: NameRing) -> int:
    """CRC-32C of the ring's canonical NameRing wire form, memoized.

    This is the ``crc`` member of the gossip anti-entropy digest
    ``(ns, version, crc)``: two rings with equal versions *and* equal
    CRCs serialize identically, so shipping one over is pure waste.
    """
    memo = _memo_of(ring)
    cached = memo.get("crc")
    if cached is None:
        cached = crc32c(dumps_ring(ring))
        memo["crc"] = cached
    return cached


def loads_ring(data: bytes, magic: str = NAMERING_MAGIC) -> NameRing:
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FormatError("NameRing object is not ASCII") from exc
    lines = [ln for ln in text.split("\n") if ln]
    if not lines:
        raise FormatError("empty NameRing object")
    header = lines[0].split(" ")
    if len(header) != 2 or header[0] != magic:
        raise FormatError(f"bad magic: {lines[0]!r} (wanted {magic})")
    if int(header[1]) != FORMAT_VERSION:
        raise FormatError(f"unsupported format version {header[1]}")
    children: dict[str, Child] = {}
    for line in lines[1:]:
        fields = line.split("|")
        if len(fields) != 7:
            raise FormatError(f"bad tuple line: {line!r}")
        raw_name, ts, kind, deleted, ns, size, etag = fields
        name = unescape(raw_name)
        children[name] = Child(
            name=name,
            timestamp=Timestamp.parse(ts),
            kind=kind,
            deleted=deleted == "D",
            ns=None if ns == "-" else ns,
            size=int(size),
            etag="" if etag == "-" else etag,
        )
    return NameRing(children=children)


def dumps_patch(ring: NameRing) -> bytes:
    """A patch "is in the same format as a NameRing" (paper §3.3.2)."""
    return dumps_ring(ring, magic=PATCH_MAGIC)


def loads_patch(data: bytes) -> NameRing:
    return loads_ring(data, magic=PATCH_MAGIC)


# ----------------------------------------------------------------------
# directory records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirectoryRecord:
    """A directory's own object: its name, namespace, parent, birth time."""

    name: str
    ns: str
    parent_ns: str | None
    created: Timestamp


def dumps_directory(record: DirectoryRecord) -> bytes:
    lines = [
        f"{DIRECTORY_MAGIC} {FORMAT_VERSION}",
        f"name {escape(record.name)}",
        f"ns {record.ns}",
        f"parent {record.parent_ns if record.parent_ns is not None else '-'}",
        f"created {record.created}",
    ]
    return ("\n".join(lines) + "\n").encode("ascii")


def loads_directory(data: bytes) -> DirectoryRecord:
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FormatError("directory object is not ASCII") from exc
    lines = [ln for ln in text.split("\n") if ln]
    if not lines or not lines[0].startswith(f"{DIRECTORY_MAGIC} "):
        raise FormatError("bad directory magic")
    fields: dict[str, str] = {}
    for line in lines[1:]:
        key, _, value = line.partition(" ")
        fields[key] = value
    try:
        return DirectoryRecord(
            name=unescape(fields["name"]),
            ns=fields["ns"],
            parent_ns=None if fields["parent"] == "-" else fields["parent"],
            created=Timestamp.parse(fields["created"]),
        )
    except KeyError as exc:
        raise FormatError(f"directory object missing field {exc}") from exc
