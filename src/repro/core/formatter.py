"""The Formatter module (paper §4.4): "stringifying" H2 data to objects.

An object storage cloud only hosts byte blobs, so NameRings, patches
and directory records must be serialized to ASCII strings before they
can be PUT.  The paper's Formatter sorts NameRing tuples alphabetically
by name and packs them "one after another"; this implementation does
the same with a line-oriented, versioned, escape-safe format so that
arbitrary (printable *or* hostile) file names round-trip exactly.

Wire formats
------------
NameRing / patch (patches share the NameRing format, §3.3.2)::

    H2NR 1                         | H2PATCH 1
    <name>|<ts>|<kind>|<D or ->|<ns or ->|<size>|<etag>
    ...sorted by name...

Directory record::

    H2DIR 1
    name <escaped-name>
    ns <uuid>
    parent <uuid or ->
    created <ts>

Shard manifest (sharded NameRings, docs/PROTOCOL.md).  A directory
whose ring outgrew the split threshold stores this small object under
its ``nr:`` key instead of the monolithic ring; the child tuples live
in per-shard ``H2NRS`` payloads (same line format as ``H2NR``) keyed
by a hash of the child name::

    H2NRM 1
    shards <count>
    epoch <epoch>
    s <k>|<version>|<crc>|<entries>
    ...one line per shard, k ascending...

Every parser in this module raises :class:`FormatError` -- never a
bare ``ValueError``/``KeyError`` -- on corrupt-but-readable bytes, so
callers can route damage to the quarantine path with one handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import quote as _quote
from urllib.parse import unquote as _unquote

from ..simcloud.clock import Timestamp
from ..simcloud.integrity import crc32c
from .namering import Child, NameRing

NAMERING_MAGIC = "H2NR"
PATCH_MAGIC = "H2PATCH"
DIRECTORY_MAGIC = "H2DIR"
MANIFEST_MAGIC = "H2NRM"
SHARD_MAGIC = "H2NRS"
FORMAT_VERSION = 1


class FormatError(ValueError):
    """The bytes do not parse as the expected H2 wire format."""


# ----------------------------------------------------------------------
# escaping: '|', newlines and non-ASCII are percent-encoded (UTF-8),
# keeping every serialized object pure ASCII as §4.4 requires
# ----------------------------------------------------------------------
_SAFE = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._~ ,:;@()[]{}=+!#$&'"


def escape(text: str) -> str:
    return _quote(text, safe=_SAFE)


def unescape(text: str) -> str:
    try:
        return _unquote(text, errors="strict")
    except UnicodeDecodeError as exc:
        raise FormatError(f"bad escape sequence in {text!r}") from exc


# ----------------------------------------------------------------------
# NameRing / patch payloads
# ----------------------------------------------------------------------
def _memo_of(ring: NameRing) -> dict:
    """Per-instance serialization memo (traffic mechanism 4).

    NameRing is a frozen dataclass without ``__slots__``, so each
    instance still owns a ``__dict__``; writing to it directly bypasses
    the frozen ``__setattr__`` without weakening immutability of the
    *logical* value -- rings are never mutated, so a dump computed once
    is valid for the instance's whole lifetime.  Merge returns ``self``
    on no-op merges, which is what makes the memo pay off: hot rings
    keep their identity (and memo) across gossip/merge churn.
    """
    memo = ring.__dict__.get("_wire_memo")
    if memo is None:
        memo = {}
        ring.__dict__["_wire_memo"] = memo
    return memo


def dumps_ring(ring: NameRing, magic: str = NAMERING_MAGIC) -> bytes:
    memo = _memo_of(ring)
    cached = memo.get(magic)
    if cached is not None:
        return cached
    lines = [f"{magic} {FORMAT_VERSION}"]
    for child in sorted(ring.children.values(), key=lambda c: c.name):
        lines.append(
            "|".join(
                [
                    escape(child.name),
                    str(child.timestamp),
                    child.kind,
                    "D" if child.deleted else "-",
                    child.ns if child.ns is not None else "-",
                    str(child.size),
                    child.etag or "-",
                ]
            )
        )
    data = ("\n".join(lines) + "\n").encode("ascii", errors="strict")
    memo[magic] = data
    return data


def ring_crc(ring: NameRing) -> int:
    """CRC-32C of the ring's canonical NameRing wire form, memoized.

    This is the ``crc`` member of the gossip anti-entropy digest
    ``(ns, version, crc)``: two rings with equal versions *and* equal
    CRCs serialize identically, so shipping one over is pure waste.
    """
    memo = _memo_of(ring)
    cached = memo.get("crc")
    if cached is None:
        cached = crc32c(dumps_ring(ring))
        memo["crc"] = cached
    return cached


def _require_version(token: str) -> None:
    """Reject any header version token other than ``FORMAT_VERSION``.

    ``int("x")`` raises a bare ``ValueError``, which used to escape
    ``loads_ring`` and bypass the quarantine path; a non-numeric token
    is just another flavor of unsupported version.
    """
    try:
        version = int(token)
    except ValueError:
        raise FormatError(f"unsupported format version {token!r}") from None
    if version != FORMAT_VERSION:
        raise FormatError(f"unsupported format version {token}")


def loads_ring(data: bytes, magic: str = NAMERING_MAGIC) -> NameRing:
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FormatError("NameRing object is not ASCII") from exc
    lines = [ln for ln in text.split("\n") if ln]
    if not lines:
        raise FormatError("empty NameRing object")
    header = lines[0].split(" ")
    if len(header) != 2 or header[0] != magic:
        raise FormatError(f"bad magic: {lines[0]!r} (wanted {magic})")
    _require_version(header[1])
    children: dict[str, Child] = {}
    for line in lines[1:]:
        fields = line.split("|")
        if len(fields) != 7:
            raise FormatError(f"bad tuple line: {line!r}")
        raw_name, ts, kind, deleted, ns, size, etag = fields
        name = unescape(raw_name)
        if name in children:
            raise FormatError(f"duplicate tuple for {name!r}")
        try:
            children[name] = Child(
                name=name,
                timestamp=Timestamp.parse(ts),
                kind=kind,
                deleted=deleted == "D",
                ns=None if ns == "-" else ns,
                size=int(size),
                etag="" if etag == "-" else etag,
            )
        except ValueError as exc:
            if isinstance(exc, FormatError):
                raise
            raise FormatError(f"bad tuple line: {line!r} ({exc})") from exc
    return NameRing(children=children)


def dumps_patch(ring: NameRing) -> bytes:
    """A patch "is in the same format as a NameRing" (paper §3.3.2)."""
    return dumps_ring(ring, magic=PATCH_MAGIC)


def loads_patch(data: bytes) -> NameRing:
    return loads_ring(data, magic=PATCH_MAGIC)


# ----------------------------------------------------------------------
# sharded NameRings: shard payloads + the manifest object
# ----------------------------------------------------------------------
def dumps_shard(ring: NameRing) -> bytes:
    """One shard's tuples, NameRing line format under the shard magic."""
    return dumps_ring(ring, magic=SHARD_MAGIC)


def loads_shard(data: bytes) -> NameRing:
    return loads_ring(data, magic=SHARD_MAGIC)


def shard_crc(ring: NameRing) -> int:
    """CRC-32C of a shard's canonical wire form, memoized per instance."""
    memo = _memo_of(ring)
    cached = memo.get("shard_crc")
    if cached is None:
        cached = crc32c(dumps_shard(ring))
        memo["shard_crc"] = cached
    return cached


@dataclass(frozen=True)
class ShardDigest:
    """One shard's anti-entropy digest: skip the payload if it matches.

    ``entries`` counts every tuple in the shard -- tombstones included
    -- so split/collapse/reshard decisions need the manifest alone,
    never a shard read.
    """

    version: Timestamp
    crc: int
    entries: int


@dataclass(frozen=True)
class ShardManifest:
    """The small object a sharded directory stores under its ``nr:`` key."""

    shard_count: int
    epoch: int
    digests: tuple[ShardDigest, ...]

    def __post_init__(self) -> None:
        if self.shard_count < 1 or len(self.digests) != self.shard_count:
            raise ValueError("manifest digests must cover every shard")
        if self.epoch < 1:
            raise ValueError("shard epochs start at 1")

    @property
    def total_entries(self) -> int:
        return sum(d.entries for d in self.digests)

    @property
    def version(self) -> Timestamp:
        """Max shard version -- the gossip digest version of the ring."""
        return max(
            (d.version for d in self.digests), default=Timestamp.ZERO
        )


def is_manifest(data: bytes) -> bool:
    """Cheap dispatch: does this ``nr:`` object hold a manifest?"""
    return data.startswith(f"{MANIFEST_MAGIC} ".encode("ascii"))


def dumps_manifest(manifest: ShardManifest) -> bytes:
    lines = [
        f"{MANIFEST_MAGIC} {FORMAT_VERSION}",
        f"shards {manifest.shard_count}",
        f"epoch {manifest.epoch}",
    ]
    for k, digest in enumerate(manifest.digests):
        lines.append(f"s {k}|{digest.version}|{digest.crc}|{digest.entries}")
    return ("\n".join(lines) + "\n").encode("ascii")


def loads_manifest(data: bytes) -> ShardManifest:
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FormatError("shard manifest is not ASCII") from exc
    lines = [ln for ln in text.split("\n") if ln]
    if not lines:
        raise FormatError("empty shard manifest")
    header = lines[0].split(" ")
    if len(header) != 2 or header[0] != MANIFEST_MAGIC:
        raise FormatError(f"bad manifest magic: {lines[0]!r}")
    _require_version(header[1])
    fields: dict[str, str] = {}
    digests: list[ShardDigest] = []
    for line in lines[1:]:
        key, _, value = line.partition(" ")
        if key == "s":
            parts = value.split("|")
            if len(parts) != 4:
                raise FormatError(f"bad shard digest line: {line!r}")
            try:
                k = int(parts[0])
                digest = ShardDigest(
                    version=Timestamp.parse(parts[1]),
                    crc=int(parts[2]),
                    entries=int(parts[3]),
                )
            except ValueError as exc:
                raise FormatError(
                    f"bad shard digest line: {line!r}"
                ) from exc
            if k != len(digests):
                raise FormatError(f"shard digests out of order at {line!r}")
            digests.append(digest)
            continue
        if key in fields:
            raise FormatError(f"duplicate manifest field {key!r}")
        fields[key] = value
    try:
        shard_count = int(fields["shards"])
        epoch = int(fields["epoch"])
    except KeyError as exc:
        raise FormatError(f"manifest missing field {exc}") from exc
    except ValueError as exc:
        raise FormatError(f"bad manifest field ({exc})") from exc
    if shard_count != len(digests):
        raise FormatError(
            f"manifest declares {shard_count} shards, "
            f"lists {len(digests)} digests"
        )
    try:
        return ShardManifest(
            shard_count=shard_count, epoch=epoch, digests=tuple(digests)
        )
    except ValueError as exc:
        raise FormatError(f"invalid manifest ({exc})") from exc


# ----------------------------------------------------------------------
# directory records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirectoryRecord:
    """A directory's own object: its name, namespace, parent, birth time."""

    name: str
    ns: str
    parent_ns: str | None
    created: Timestamp


def dumps_directory(record: DirectoryRecord) -> bytes:
    lines = [
        f"{DIRECTORY_MAGIC} {FORMAT_VERSION}",
        f"name {escape(record.name)}",
        f"ns {record.ns}",
        f"parent {record.parent_ns if record.parent_ns is not None else '-'}",
        f"created {record.created}",
    ]
    return ("\n".join(lines) + "\n").encode("ascii")


def loads_directory(data: bytes) -> DirectoryRecord:
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FormatError("directory object is not ASCII") from exc
    lines = [ln for ln in text.split("\n") if ln]
    if not lines:
        raise FormatError("empty directory object")
    header = lines[0].split(" ")
    if len(header) != 2 or header[0] != DIRECTORY_MAGIC:
        raise FormatError("bad directory magic")
    _require_version(header[1])
    fields: dict[str, str] = {}
    for line in lines[1:]:
        key, _, value = line.partition(" ")
        if key in fields:
            raise FormatError(f"duplicate directory field {key!r}")
        fields[key] = value
    try:
        return DirectoryRecord(
            name=unescape(fields["name"]),
            ns=fields["ns"],
            parent_ns=None if fields["parent"] == "-" else fields["parent"],
            created=Timestamp.parse(fields["created"]),
        )
    except KeyError as exc:
        raise FormatError(f"directory object missing field {exc}") from exc
    except ValueError as exc:
        if isinstance(exc, FormatError):
            raise
        raise FormatError(f"bad directory field ({exc})") from exc
