"""System monitoring (paper Fig 6: "a few other modules ... for
inter-communications and system monitoring").

:class:`Monitor` is one middleware's window into the unified
:class:`~repro.obs.metrics.MetricsRegistry`: per-operation latency
histograms (recorded automatically by the middleware's instrumented
Inbound API), descriptor-cache efficiency, maintenance-protocol
throughput (patches, merges, gossip), fault-masking cost and the
underlying store's request mix -- flattened into a stable
``snapshot()`` whose key names are a compatibility contract (see
``tests/obs/test_metric_names.py``).

Every :class:`~repro.core.middleware.H2Middleware` owns one persistent
``Monitor`` from construction (``mw.monitor``); constructing
``Monitor(mw)`` by hand binds to the same registry, so ad-hoc monitors
see the same history instead of the empty histograms the seed's
throwaway instances reported.

:func:`deployment_report` rolls every middleware of a deployment into
one text block, used by the examples and handy at a REPL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry

#: histogram suffixes emitted per instrumented operation
_OP_STATS = ("count", "mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms")


@dataclass
class LatencyHistogram:
    """A tiny fixed-bucket latency histogram (microseconds).

    Kept for the text report's bucket labels; exact distributions live
    in :class:`repro.obs.metrics.Histogram`.  ``percentile(q)`` answers
    with a linearly interpolated value inside the bucket the quantile
    falls in, which is as much as bucket counts can support.
    """

    BOUNDS = (1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000)

    counts: list[int] = field(default_factory=lambda: [0] * 8)
    total_us: int = 0
    max_us: int = 0
    samples: int = 0

    def observe(self, us: int) -> None:
        self.samples += 1
        self.total_us += us
        self.max_us = max(self.max_us, us)
        for i, bound in enumerate(self.BOUNDS):
            if us <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean_us(self) -> float:
        return self.total_us / self.samples if self.samples else 0.0

    def _rank(self, q: float) -> int:
        """Nearest-rank index (1-based) of quantile ``q``.

        ``ceil(q * samples)`` computed with a guard against float
        noise: ``0.3 * 10`` is ``3.0000000000000004`` in binary
        floating point, and without the epsilon the rank would come out
        one too high at exactly those boundaries (and ``q=1.0`` must
        land on the last sample, never past it).
        """
        return min(self.samples, max(1, math.ceil(q * self.samples - 1e-9)))

    def percentile_bucket(self, q: float) -> str:
        """The bucket label containing quantile ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if not self.samples:
            return "n/a"
        want = self._rank(q)
        seen = 0
        labels = [f"<={b // 1000}ms" for b in self.BOUNDS] + [">10s"]
        for count, label in zip(self.counts, labels):
            seen += count
            if seen >= want:
                return label
        return labels[-1]

    def percentile(self, q: float) -> float:
        """Interpolated quantile ``q`` in microseconds.

        Linear interpolation across the winning bucket's range,
        clamped to ``max_us`` (the histogram knows its true maximum, so
        the open-ended overflow bucket stays finite).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if not self.samples:
            return 0.0
        want = self._rank(q)
        seen = 0
        lower = 0
        for count, upper in zip(self.counts, self.BOUNDS):
            if seen + count >= want:
                frac = (want - seen) / count
                return min(float(self.max_us), lower + (upper - lower) * frac)
            seen += count
            lower = upper
        return float(self.max_us)


class Monitor:
    """Observes one middleware; snapshots the unified metrics registry."""

    def __init__(self, middleware):
        self._mw = middleware
        registry = getattr(middleware, "metrics", None)
        self.registry: MetricsRegistry = (
            registry if registry is not None else MetricsRegistry()
        )
        # Pull gauges: integrity state lives on the store, not in event
        # counters, so exporters read the current level at scrape time.
        # ``gauge`` is get-or-create -- re-binding an ad-hoc Monitor to
        # the shared registry reuses the instruments already wired to
        # the (same) store.
        store = middleware.store
        self.registry.gauge(
            "integrity.quarantined_replicas",
            lambda: store.quarantined_replica_count,
        )
        self.registry.gauge(
            "integrity.unrecoverable_objects",
            lambda: len(store.unrecoverable),
        )

    def timed(self, op_name: str, thunk):
        """Run an operation under observation; returns its result.

        Failures are counted (``op.<name>.errors``) but excluded from
        the latency distribution -- a refused mkdir says nothing about
        how long a successful one takes.
        """
        clock = self._mw.clock
        start = clock.now_us
        try:
            result = thunk()
        except BaseException:
            self.registry.counter(f"op.{op_name}.errors").inc()
            raise
        self.registry.histogram(f"op.{op_name}").observe(clock.now_us - start)
        return result

    @property
    def ops(self) -> dict[str, object]:
        """Per-op latency histograms recorded so far, keyed by op name."""
        return {
            h.name[len("op."):]: h
            for h in self.registry.histograms()
            if h.name.startswith("op.")
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat metrics for scraping -- counter/gauge names are stable."""
        mw = self._mw
        cache = mw.fd_cache.stats
        ledger = mw.store.ledger
        metrics: dict[str, float] = {
            "fd_cache.size": len(mw.fd_cache),
            "fd_cache.hits": cache.hits,
            "fd_cache.misses": cache.misses,
            "fd_cache.hit_rate": cache.hit_rate,
            "fd_cache.evictions": cache.evictions,
            "maintenance.patches_submitted": mw.patches_submitted,
            "maintenance.merges": mw.merger.merges,
            "maintenance.merge_steps": mw.merger.single_steps,
            "maintenance.patches_applied": mw.merger.patches_applied,
            "maintenance.merge_blocked": int(mw.merge_blocked),
            "store.puts": ledger.puts,
            "store.gets": ledger.gets,
            "store.heads": ledger.heads,
            "store.deletes": ledger.deletes,
            "store.copies": ledger.copies,
            "store.bytes_in": ledger.bytes_in,
            "store.bytes_out": ledger.bytes_out,
            "store.background_ms": ledger.background_us / 1000.0,
            "clock.now_ms": mw.clock.now_ms,
        }
        resilience = mw.store.resilience
        breakers = mw.store.breakers.values()
        now_us = mw.clock.now_us
        metrics.update(
            {
                "resilience.retries": resilience.retries,
                "resilience.backoff_ms": resilience.backoff_us / 1000.0,
                "resilience.timeouts": resilience.timeouts,
                "resilience.io_errors": resilience.io_errors,
                "resilience.fast_failures": resilience.fast_failures,
                "resilience.repaired_replicas": resilience.repaired_replicas,
                "resilience.breaker_trips": sum(b.trips for b in breakers),
                "resilience.breakers_open": sum(
                    1 for b in breakers if b.is_quarantined(now_us)
                ),
                "integrity.corrupt_replicas": resilience.corrupt_replicas,
                "integrity.read_repairs": resilience.read_repairs,
                "integrity.scrub_repairs": resilience.scrub_repairs,
                "integrity.quarantined_replicas": (
                    mw.store.quarantined_replica_count
                ),
                "integrity.unrecoverable_objects": len(mw.store.unrecoverable),
                "degraded.serves": mw.degraded_serves,
                "degraded.stale_rings": sum(
                    1 for fd in mw.fd_cache.descriptors() if fd.stale
                ),
                "traffic.negative_hits": mw.metrics.counter(
                    "traffic.negative_hits"
                ).value,
                "traffic.revalidations": mw.metrics.counter(
                    "traffic.revalidations"
                ).value,
                "traffic.group_commits": mw.metrics.counter(
                    "traffic.group_commits"
                ).value,
                "traffic.patches_coalesced": mw.metrics.counter(
                    "traffic.patches_coalesced"
                ).value,
                "traffic.put_elisions": mw.metrics.counter(
                    "traffic.put_elisions"
                ).value,
                "traffic.digest_skips": mw.metrics.counter(
                    "traffic.digest_skips"
                ).value,
                "gc.passes": mw.metrics.counter("gc.passes").value,
                "gc.swept": mw.metrics.counter("gc.swept").value,
                "gc.reclaimed_bytes": mw.metrics.counter("gc.reclaimed_bytes").value,
                "gc.compacted_rings": mw.metrics.counter("gc.compacted_rings").value,
                "trace.spans": len(mw.tracer.spans),
                "trace.dropped": mw.tracer.dropped,
            }
        )
        membership = getattr(mw.store, "membership", None)
        if membership is not None:
            handoff = LatencyHistogram()
            for us in membership.handoff_us:
                handoff.observe(us)
            metrics.update(
                {
                    "membership.epoch": membership.epoch,
                    "membership.transitions": membership.transitions,
                    "membership.pending_moves": membership.pending_moves,
                    "membership.partitions_moved": membership.partitions_moved,
                    "membership.bytes_migrated": membership.bytes_migrated,
                    "membership.dual_reads": membership.dual_reads,
                    "membership.write_throughs": membership.write_throughs,
                    "membership.handoffs": handoff.samples,
                    "membership.handoff_p50_ms": (
                        handoff.percentile(0.50) / 1000.0
                    ),
                    "membership.handoff_p99_ms": (
                        handoff.percentile(0.99) / 1000.0
                    ),
                }
            )
        partitions = getattr(mw.store, "partitions", None)
        if partitions is not None:
            metrics.update(
                {
                    "partition.active_cuts": len(partitions.active),
                    "partition.cuts_applied": partitions.cuts_applied,
                    "partition.heals": partitions.heals,
                    "partition.blocked_requests": partitions.blocked_requests,
                    "partition.blocked_rumors": partitions.blocked_rumors,
                }
            )
        hints = getattr(mw.store, "hints", None)
        if hints is not None:
            for key, value in hints.snapshot().items():
                metrics[f"traffic.hints_{key}"] = value
        if mw.network is not None:
            metrics["gossip.rumors_sent"] = mw.network.rumors_sent
            metrics["gossip.rumors_delivered"] = mw.network.rumors_delivered
            metrics["gossip.single_deliveries"] = mw.network.single_deliveries
            metrics["gossip.anti_entropy_rounds"] = mw.network.anti_entropy_rounds
            metrics["gossip.in_flight"] = mw.network.in_flight
            metrics["traffic.rumors_coalesced"] = mw.network.rumors_coalesced
        for op_name, histogram in sorted(self.ops.items()):
            metrics[f"op.{op_name}.count"] = histogram.samples
            metrics[f"op.{op_name}.mean_ms"] = histogram.mean / 1000.0
            # Extrema are None until the first observation (snapshot
            # values must stay numeric, so empty reports 0.0).
            metrics[f"op.{op_name}.min_ms"] = (histogram.min or 0) / 1000.0
            metrics[f"op.{op_name}.max_ms"] = (histogram.max or 0) / 1000.0
            metrics[f"op.{op_name}.p50_ms"] = histogram.percentile(0.50) / 1000.0
            metrics[f"op.{op_name}.p95_ms"] = histogram.percentile(0.95) / 1000.0
            metrics[f"op.{op_name}.p99_ms"] = histogram.percentile(0.99) / 1000.0
        for counter in self.registry.counters():
            if counter.name.startswith("op.") and counter.name.endswith(".errors"):
                metrics[counter.name] = counter.value
        return metrics


def deployment_report(fs) -> str:
    """One text block summarising an H2Cloud deployment's health."""
    lines = ["== H2Cloud deployment report =="]
    count, nbytes = fs.store.census()
    lines.append(
        f"objects: {count}  logical bytes: {nbytes:,}  "
        f"accounts: {sorted(fs.store.accounts)}"
    )
    for mw in fs.middlewares:
        metrics = mw.monitor.snapshot()
        lines.append(
            f"middleware {mw.node_id}: "
            f"fd-cache {int(metrics['fd_cache.size'])} entries "
            f"(hit rate {metrics['fd_cache.hit_rate']:.0%}), "
            f"{int(metrics['maintenance.patches_submitted'])} patches, "
            f"{int(metrics['maintenance.merges'])} merges"
        )
        ops = [
            (name, hist)
            for name, hist in sorted(mw.monitor.ops.items())
            if hist.samples
        ]
        if ops:
            lines.append(
                "  ops: "
                + "  ".join(
                    f"{name} n={hist.samples} "
                    f"p50={hist.percentile(0.5) / 1000.0:.1f}ms "
                    f"p99={hist.percentile(0.99) / 1000.0:.1f}ms"
                    for name, hist in ops
                )
            )
    store = fs.store
    trips = sum(b.trips for b in store.breakers.values())
    degraded = sum(mw.degraded_serves for mw in fs.middlewares)
    lines.append(
        f"fault-tolerance: {store.resilience.retries} retries "
        f"({store.resilience.io_errors} io-errors, "
        f"{store.resilience.timeouts} timeouts masked), "
        f"{trips} breaker trips, {degraded} degraded serves, "
        f"{store.resilience.repaired_replicas} replicas repaired"
    )
    lines.append(
        f"integrity: {store.resilience.corrupt_replicas} corrupt replicas "
        f"detected, {store.resilience.read_repairs} read-repairs, "
        f"{store.resilience.scrub_repairs} scrub repairs, "
        f"{store.quarantined_replica_count} quarantined, "
        f"{len(store.unrecoverable)} unrecoverable"
    )
    for node_id, (replicas, used) in fs.cluster.storage_stats().items():
        lines.append(f"node {node_id}: {replicas} replicas, {used:,} B")
    return "\n".join(lines)
