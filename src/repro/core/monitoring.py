"""System monitoring (paper Fig 6: "a few other modules ... for
inter-communications and system monitoring").

:class:`Monitor` aggregates one middleware's operational signals into
a flat metrics snapshot -- the numbers an operator's dashboard would
plot: per-operation counters with simulated latency distributions,
descriptor-cache efficiency, maintenance-protocol throughput (patches,
merges, gossip), and the underlying store's request mix.

:func:`deployment_report` rolls every middleware of a deployment into
one text block, used by the examples and handy at a REPL.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyHistogram:
    """A tiny fixed-bucket latency histogram (microseconds)."""

    BOUNDS = (1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000)

    counts: list[int] = field(default_factory=lambda: [0] * 8)
    total_us: int = 0
    max_us: int = 0
    samples: int = 0

    def observe(self, us: int) -> None:
        self.samples += 1
        self.total_us += us
        self.max_us = max(self.max_us, us)
        for i, bound in enumerate(self.BOUNDS):
            if us <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean_us(self) -> float:
        return self.total_us / self.samples if self.samples else 0.0

    def percentile_bucket(self, q: float) -> str:
        """The bucket label containing quantile ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if not self.samples:
            return "n/a"
        want = q * self.samples
        seen = 0
        labels = [f"<={b // 1000}ms" for b in self.BOUNDS] + [">10s"]
        for count, label in zip(self.counts, labels):
            seen += count
            if seen >= want:
                return label
        return labels[-1]


class Monitor:
    """Observes one middleware; records per-op counts and latencies."""

    def __init__(self, middleware):
        self._mw = middleware
        self.ops: dict[str, LatencyHistogram] = {}

    def timed(self, op_name: str, thunk):
        """Run an operation under observation; returns its result."""
        result, elapsed = self._mw.clock.measure(thunk)
        self.ops.setdefault(op_name, LatencyHistogram()).observe(elapsed)
        return result

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat metrics for scraping -- counter/gauge names are stable."""
        mw = self._mw
        cache = mw.fd_cache.stats
        ledger = mw.store.ledger
        metrics: dict[str, float] = {
            "fd_cache.size": len(mw.fd_cache),
            "fd_cache.hits": cache.hits,
            "fd_cache.misses": cache.misses,
            "fd_cache.hit_rate": cache.hit_rate,
            "fd_cache.evictions": cache.evictions,
            "maintenance.patches_submitted": mw.patches_submitted,
            "maintenance.merges": mw.merger.merges,
            "maintenance.merge_steps": mw.merger.single_steps,
            "maintenance.patches_applied": mw.merger.patches_applied,
            "maintenance.merge_blocked": int(mw.merge_blocked),
            "store.puts": ledger.puts,
            "store.gets": ledger.gets,
            "store.heads": ledger.heads,
            "store.deletes": ledger.deletes,
            "store.copies": ledger.copies,
            "store.bytes_in": ledger.bytes_in,
            "store.bytes_out": ledger.bytes_out,
            "store.background_ms": ledger.background_us / 1000.0,
            "clock.now_ms": mw.clock.now_ms,
        }
        resilience = mw.store.resilience
        breakers = mw.store.breakers.values()
        now_us = mw.clock.now_us
        metrics.update(
            {
                "resilience.retries": resilience.retries,
                "resilience.backoff_ms": resilience.backoff_us / 1000.0,
                "resilience.timeouts": resilience.timeouts,
                "resilience.io_errors": resilience.io_errors,
                "resilience.fast_failures": resilience.fast_failures,
                "resilience.repaired_replicas": resilience.repaired_replicas,
                "resilience.breaker_trips": sum(b.trips for b in breakers),
                "resilience.breakers_open": sum(
                    1 for b in breakers if b.is_quarantined(now_us)
                ),
                "degraded.serves": mw.degraded_serves,
                "degraded.stale_rings": sum(
                    1 for fd in mw.fd_cache.descriptors() if fd.stale
                ),
            }
        )
        if mw.network is not None:
            metrics["gossip.rumors_sent"] = mw.network.rumors_sent
            metrics["gossip.rumors_delivered"] = mw.network.rumors_delivered
            metrics["gossip.single_deliveries"] = mw.network.single_deliveries
            metrics["gossip.anti_entropy_rounds"] = mw.network.anti_entropy_rounds
            metrics["gossip.in_flight"] = mw.network.in_flight
        for op_name, histogram in sorted(self.ops.items()):
            metrics[f"op.{op_name}.count"] = histogram.samples
            metrics[f"op.{op_name}.mean_ms"] = histogram.mean_us / 1000.0
            metrics[f"op.{op_name}.max_ms"] = histogram.max_us / 1000.0
        return metrics


def deployment_report(fs) -> str:
    """One text block summarising an H2Cloud deployment's health."""
    lines = ["== H2Cloud deployment report =="]
    count, nbytes = fs.store.census()
    lines.append(
        f"objects: {count}  logical bytes: {nbytes:,}  "
        f"accounts: {sorted(fs.store.accounts)}"
    )
    for mw in fs.middlewares:
        metrics = Monitor(mw).snapshot()
        lines.append(
            f"middleware {mw.node_id}: "
            f"fd-cache {int(metrics['fd_cache.size'])} entries "
            f"(hit rate {metrics['fd_cache.hit_rate']:.0%}), "
            f"{int(metrics['maintenance.patches_submitted'])} patches, "
            f"{int(metrics['maintenance.merges'])} merges"
        )
    store = fs.store
    trips = sum(b.trips for b in store.breakers.values())
    degraded = sum(mw.degraded_serves for mw in fs.middlewares)
    lines.append(
        f"fault-tolerance: {store.resilience.retries} retries "
        f"({store.resilience.io_errors} io-errors, "
        f"{store.resilience.timeouts} timeouts masked), "
        f"{trips} breaker trips, {degraded} degraded serves, "
        f"{store.resilience.repaired_replicas} replicas repaired"
    )
    for node_id, (replicas, used) in fs.cluster.storage_stats().items():
        lines.append(f"node {node_id}: {replicas} replicas, {used:,} B")
    return "\n".join(lines)
