"""Sharded NameRings: chunk-per-object storage for giant directories.

The paper's heavy users put ~0.5M files in one directory (fig 10
sweeps to m=500k), but a monolithic ring object makes every patch
merge, gossip write-back and LIST serialize all m entries.  Past a
split threshold the directory's ``nr:`` object becomes a small
*manifest* (shard count, epoch, per-shard ``(version, crc, entries)``
digests -- :class:`~repro.core.formatter.ShardManifest`) and the child
tuples move into per-shard payload objects keyed by a hash of the
child name (:func:`~repro.core.namespace.ring_shard_key`).  A merge or
gossip exchange then touches only the shards whose digests differ.

Layout transitions (docs/PROTOCOL.md §11):

* **split** (mono -> sharded): write every shard payload first, then
  flip the ``nr:`` object from ring bytes to the manifest.  The
  manifest PUT is the commit point -- a torn split leaves the
  monolithic ring fully intact and the orphan payloads to GC.
* **collapse** (sharded -> mono): write the ring bytes over ``nr:``
  first (the commit point), then delete the payloads.
* **reshard** (grow the shard count): write the new shard set under
  ``epoch + 1`` keys, flip the manifest, delete the old epoch's
  payloads.  A torn reshard leaves the old epoch complete.

Hysteresis: ``split_threshold`` strictly above ``merge_threshold`` so
churn at the boundary cannot thrash between layouts; counts only grow
(shrink happens via collapse), so a shard's name set is stable until
the whole layout changes.

Everything here is store-level and middleware-free so the merger, GC,
fsck and the benches share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcloud.errors import ObjectNotFound, QuorumError
from ..simcloud.object_store import ObjectStore
from . import formatter
from .formatter import ShardDigest, ShardManifest
from .namering import NameRing, name_hash
from .namespace import Namespace, namering_key, ring_shard_key

#: shard counts are powers of two in [2, MAX_SHARDS]; growth-only
MAX_SHARDS = 1024


@dataclass(frozen=True)
class ShardPolicy:
    """When to split, when to collapse, how many shards to aim for.

    Default-off: with ``enabled=False`` no ring is ever split and the
    write path is byte-identical to the monolithic layout, which is
    what keeps the committed DST corpus digests stable.
    """

    enabled: bool = False
    split_threshold: int = 1024
    merge_threshold: int = 256
    target_entries: int = 512

    def __post_init__(self) -> None:
        if self.merge_threshold >= self.split_threshold:
            raise ValueError(
                "hysteresis requires merge_threshold < split_threshold"
            )
        if self.target_entries < 1:
            raise ValueError("target_entries must be positive")

    def should_split(self, entries: int) -> bool:
        """Mono -> sharded once the tuple count reaches the threshold."""
        return self.enabled and entries >= self.split_threshold

    def should_collapse(self, entries: int) -> bool:
        """Sharded -> mono once well below the split point (hysteresis)."""
        return entries <= self.merge_threshold

    def desired_count(self, entries: int) -> int:
        """Power-of-two shard count aiming at ``target_entries`` each."""
        count = 2
        while count < MAX_SHARDS and entries > count * self.target_entries:
            count *= 2
        return count


def shard_of(name: str, count: int) -> int:
    """Which shard a child name lives in, for a given shard count."""
    return name_hash(name) % count


def split_ring(ring: NameRing, count: int) -> list[NameRing]:
    """Partition a ring's tuples into ``count`` per-shard rings.

    Every slot is materialized (possibly empty) because every shard
    payload is written at split time -- a manifest never lists a shard
    whose object does not exist.
    """
    buckets: list[dict] = [{} for _ in range(count)]
    for name, child in ring.children.items():
        buckets[child.name_hash % count][name] = child
    return [NameRing(children=bucket) for bucket in buckets]


def extract_shards(
    ring: NameRing, count: int, wanted: set[int]
) -> dict[int, NameRing]:
    """Per-shard rings for just the ``wanted`` slots, one O(m) pass."""
    buckets: dict[int, dict] = {k: {} for k in wanted}
    for name, child in ring.children.items():
        k = child.name_hash % count
        if k in wanted:
            buckets[k][name] = child
    return {k: NameRing(children=bucket) for k, bucket in buckets.items()}


def digest_of(shard: NameRing) -> ShardDigest:
    """The anti-entropy digest of one shard payload."""
    return ShardDigest(
        version=shard.version,
        crc=formatter.shard_crc(shard),
        entries=len(shard.children),
    )


def manifest_of(shards: list[NameRing], epoch: int) -> ShardManifest:
    return ShardManifest(
        shard_count=len(shards),
        epoch=epoch,
        digests=tuple(digest_of(s) for s in shards),
    )


# ----------------------------------------------------------------------
# stored-ring IO: the one reader/writer GC, fsck, the merger and the
# middleware all share
# ----------------------------------------------------------------------
@dataclass
class StoredRing:
    """What the store holds for one directory right now.

    ``ring`` is the union view (shards are name-disjoint, so a plain
    dict union -- no arbitration needed).  ``shards`` keeps the
    per-shard rings when the layout is sharded so callers like GC's
    manifest-heal can recompute digests without a second read.
    """

    ring: NameRing
    manifest: ShardManifest | None
    shards: list[NameRing] | None = None


def read_stored(
    store: ObjectStore, ns: Namespace, fan_out: bool = False
) -> StoredRing:
    """Read a directory's ring, seeing through the manifest if sharded.

    Raises :class:`ObjectNotFound` when the ``nr:`` object is missing,
    and lets :class:`QuorumError` / ``CorruptObjectError`` /
    :class:`~repro.core.formatter.FormatError` propagate -- callers
    keep their existing taxonomy.  A shard payload missing despite
    being listed in the manifest reads as empty (a torn split repaired
    by the next write-back; fsck reports it loudly).

    ``fan_out=True`` issues the shard GETs through the store's
    connection pool so a cold load of a giant directory costs the
    makespan, not ``k`` serial RTTs; maintenance walkers keep the
    sequential path.
    """
    record = store.get(namering_key(ns))
    if not formatter.is_manifest(record.data):
        return StoredRing(ring=formatter.loads_ring(record.data), manifest=None)
    manifest = formatter.loads_manifest(record.data)

    def fetch(key: str):
        try:
            return ("ok", store.get(key).data)
        except ObjectNotFound:
            return ("missing", None)
        except QuorumError as exc:
            return ("error", exc)

    keys = [
        ring_shard_key(ns, manifest.epoch, k)
        for k in range(manifest.shard_count)
    ]
    if fan_out:
        outcomes = store.parallel([lambda key=key: fetch(key) for key in keys])
    else:
        outcomes = [fetch(key) for key in keys]
    shards: list[NameRing] = []
    merged: dict = {}
    for status, payload in outcomes:
        if status == "error":
            raise payload
        if status == "missing":
            shards.append(NameRing.empty())
            continue
        shard = formatter.loads_shard(payload)
        shards.append(shard)
        merged.update(shard.children)
    return StoredRing(
        ring=NameRing(children=merged), manifest=manifest, shards=shards
    )


def write_stored(
    store: ObjectStore,
    ns: Namespace,
    ring: NameRing,
    policy: ShardPolicy,
    stored: ShardManifest | None,
    counters=None,
) -> ShardManifest | None:
    """Full-state write of ``ring``, choosing/keeping the right layout.

    ``stored`` is the manifest the caller last read for this directory
    (None = monolithic or absent).  When the layout is already sharded
    and stays sharded at the same count, shards whose digest matches
    the stored manifest are not rewritten -- a full-state write after
    compaction of a giant directory touches only the shards that
    actually changed.  Returns the manifest now stored (None = mono).
    """
    entries = len(ring.children)
    if stored is None:
        if not policy.should_split(entries):
            store.put(namering_key(ns), formatter.dumps_ring(ring))
            return None
        # split: payloads first, manifest flip commits
        count = policy.desired_count(entries)
        shards = split_ring(ring, count)
        for k, shard in enumerate(shards):
            store.put(ring_shard_key(ns, 1, k), formatter.dumps_shard(shard))
            _bump(counters, "put")
        manifest = manifest_of(shards, epoch=1)
        store.put(namering_key(ns), formatter.dumps_manifest(manifest))
        _bump(counters, "split")
        return manifest

    if not policy.enabled or policy.should_collapse(entries):
        # collapse: ring bytes over nr: commit, then drop the payloads
        store.put(namering_key(ns), formatter.dumps_ring(ring))
        _delete_shards(store, ns, stored)
        _bump(counters, "collapse")
        return None

    count = policy.desired_count(entries)
    if count > stored.shard_count:
        # reshard (grow): new epoch's payloads, manifest flip, cleanup
        epoch = stored.epoch + 1
        shards = split_ring(ring, count)
        for k, shard in enumerate(shards):
            store.put(
                ring_shard_key(ns, epoch, k), formatter.dumps_shard(shard)
            )
            _bump(counters, "put")
        manifest = manifest_of(shards, epoch=epoch)
        store.put(namering_key(ns), formatter.dumps_manifest(manifest))
        _delete_shards(store, ns, stored)
        _bump(counters, "reshard")
        return manifest

    # steady state: same count/epoch, rewrite only what changed
    shards = split_ring(ring, stored.shard_count)
    digests: list[ShardDigest] = []
    for k, shard in enumerate(shards):
        digest = digest_of(shard)
        digests.append(digest)
        if digest == stored.digests[k]:
            _bump(counters, "skip")
            continue
        store.put(
            ring_shard_key(ns, stored.epoch, k), formatter.dumps_shard(shard)
        )
        _bump(counters, "put")
    manifest = ShardManifest(
        shard_count=stored.shard_count,
        epoch=stored.epoch,
        digests=tuple(digests),
    )
    if manifest != stored:
        store.put(namering_key(ns), formatter.dumps_manifest(manifest))
    return manifest


def delete_stored(store: ObjectStore, ns: Namespace) -> None:
    """Delete a directory's ring object and any shard payloads."""
    try:
        record = store.get(namering_key(ns))
    except ObjectNotFound:
        record = None
    if record is not None and formatter.is_manifest(record.data):
        try:
            _delete_shards(store, ns, formatter.loads_manifest(record.data))
        except formatter.FormatError:
            pass  # unparseable manifest: orphan payloads go to GC
    store.delete(namering_key(ns), missing_ok=True)


def shard_keys(ns: Namespace, manifest: ShardManifest) -> list[str]:
    """Every payload key the manifest's current epoch points at."""
    return [
        ring_shard_key(ns, manifest.epoch, k)
        for k in range(manifest.shard_count)
    ]


def _delete_shards(
    store: ObjectStore, ns: Namespace, manifest: ShardManifest
) -> None:
    for key in shard_keys(ns, manifest):
        store.delete(key, missing_ok=True)


def _bump(counters, event: str) -> None:
    if counters is not None:
        counter = counters.get(event)
        if counter is not None:
            counter.inc()
