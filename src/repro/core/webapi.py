"""The Inbound API as a web service (paper §4.1, §4.3).

H2Cloud "provides filesystem services to the users in the form of web
services, i.e., through a series of web APIs"; clients send HTTP
messages to an H2Middleware.  This module implements that surface as a
transport-agnostic request/response layer: the three API families the
paper names --

* **Account APIs** -- create or delete an account;
* **Directory APIs** -- traverse or modify directory structure
  (MKDIR, RMDIR, MOVE, COPY, LIST);
* **File Content APIs** -- READ and WRITE (plus DELETE and the quick
  relative-path GET).

Routing table (paths are ``/v1/<account></fs path>``)::

    PUT    /v1/alice                    create account
    GET    /v1/alice/photos?list=names  LIST (names | detail)
    PUT    /v1/alice/photos?dir=1       MKDIR
    DELETE /v1/alice/photos?dir=1       RMDIR
    POST   /v1/alice/photos?op=move&dst=/albums    MOVE/RENAME
    POST   /v1/alice/photos?op=copy&dst=/backup    COPY
    PUT    /v1/alice/photos/cat.jpg     WRITE (body = content)
    GET    /v1/alice/photos/cat.jpg     READ
    HEAD   /v1/alice/photos/cat.jpg     STAT (lookup only)
    DELETE /v1/alice/photos/cat.jpg     DELETE
    GET    /v1/~rel/<ns>::<name>        quick O(1) relative access

Status codes follow HTTP conventions (201 created, 404 not found,
409 conflict, 400 bad request, ...), with filesystem errors mapped in
one place so every client sees consistent semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote

from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    FilesystemError,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PathNotFound,
    PreconditionFailed,
    ServiceUnavailable,
)
from .middleware import H2Middleware
from .namering import KIND_DIR

API_VERSION = "v1"

_STATUS_REASON = {
    200: "OK",
    201: "Created",
    204: "No Content",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    412: "Precondition Failed",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class Request:
    """One HTTP-shaped request."""

    method: str
    path: str  # e.g. "/v1/alice/photos/cat.jpg?list=detail"
    body: bytes = b""

    @property
    def raw_path(self) -> str:
        return self.path.split("?", 1)[0]

    @property
    def query(self) -> dict[str, str]:
        if "?" not in self.path:
            return {}
        parsed = parse_qs(self.path.split("?", 1)[1], keep_blank_values=True)
        return {k: v[0] for k, v in parsed.items()}


@dataclass(frozen=True)
class Response:
    """One HTTP-shaped response."""

    status: int
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def reason(self) -> str:
        return _STATUS_REASON.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def text(self) -> str:
        return self.body.decode("utf-8")


def _error_status(exc: FilesystemError) -> int:
    if isinstance(exc, (PathNotFound,)):
        return 404
    if isinstance(exc, PreconditionFailed):
        return 412
    if isinstance(exc, (AlreadyExists, DirectoryNotEmpty)):
        return 409
    if isinstance(exc, ServiceUnavailable):
        return 503
    if isinstance(exc, (NotADirectory, IsADirectory, InvalidPath)):
        return 400
    return 400


class H2WebAPI:
    """The middleware's HTTP front: routes requests to Inbound API calls."""

    def __init__(self, middleware: H2Middleware):
        self.middleware = middleware
        self.requests_served = 0

    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Dispatch one request; never raises filesystem errors.

        Each request opens a fresh root span (``http``), so every span
        the inbound call fans out to -- lookup hops, patches, merges,
        gossip on peers -- shares one trace id per request.
        """
        self.requests_served += 1
        mw = self.middleware
        with mw.tracer.span(
            "http",
            tags={
                "node": mw.node_id,
                "method": request.method,
                "path": request.raw_path,
            },
        ) as span:
            try:
                response = self._route(request)
            except FilesystemError as exc:
                response = Response(
                    status=_error_status(exc), body=str(exc).encode("utf-8")
                )
            span.tag("status", response.status)
        return response

    # convenience wrappers for client code / tests
    def get(self, path: str) -> Response:
        return self.handle(Request("GET", path))

    def put(self, path: str, body: bytes = b"") -> Response:
        return self.handle(Request("PUT", path, body))

    def post(self, path: str, body: bytes = b"") -> Response:
        return self.handle(Request("POST", path, body))

    def delete(self, path: str) -> Response:
        return self.handle(Request("DELETE", path))

    def head(self, path: str) -> Response:
        return self.handle(Request("HEAD", path))

    # ------------------------------------------------------------------
    def _route(self, request: Request) -> Response:
        segments = [s for s in request.raw_path.split("/") if s]
        if not segments or segments[0] != API_VERSION:
            return Response(status=400, body=b"unknown API version")
        if len(segments) == 1:
            return Response(status=400, body=b"missing account")
        account = unquote(segments[1])

        # Quick relative-path access: GET /v1/~rel/<ns>::<name>
        if account == "~rel":
            if request.method != "GET":
                return Response(status=405)
            rel = unquote("/".join(segments[2:]))
            data = self.middleware.read_file_relative(rel)
            return Response(status=200, body=bytes(data) if isinstance(data, bytes) else b"")

        fs_path = "/" + "/".join(unquote(s) for s in segments[2:])
        if len(segments) == 2:
            return self._account_api(request, account)
        if request.query.get("dir") or "list" in request.query or (
            request.method == "POST"
        ):
            return self._directory_api(request, account, fs_path)
        return self._file_api(request, account, fs_path)

    # ------------------------------------------------------------------
    # Account APIs
    # ------------------------------------------------------------------
    def _account_api(self, request: Request, account: str) -> Response:
        mw = self.middleware
        if request.method == "PUT":
            mw.create_account(account)
            return Response(status=201)
        if request.method == "HEAD":
            if mw.account_exists(account):
                return Response(status=204)
            return Response(status=404)
        if request.method == "GET":
            if not mw.account_exists(account):
                return Response(status=404, body=b"no such account")
            entries = mw.list_dir(account, "/")
            return Response(status=200, body=_listing_body(entries, "names"))
        if request.method == "DELETE":
            force = request.query.get("force", "0") == "1"
            mw.delete_account(account, force=force)
            return Response(status=204)
        return Response(status=405)

    # ------------------------------------------------------------------
    # Directory APIs
    # ------------------------------------------------------------------
    def _directory_api(self, request: Request, account: str, path: str) -> Response:
        mw = self.middleware
        query = request.query
        if request.method == "PUT" and query.get("dir"):
            mw.mkdir(account, path)
            return Response(status=201)
        if request.method == "DELETE" and query.get("dir"):
            recursive = query.get("recursive", "1") != "0"
            mw.rmdir(account, path, recursive=recursive)
            return Response(status=204)
        if request.method == "GET":
            mode = query.get("list", "names")
            if mode not in ("names", "detail"):
                return Response(status=400, body=b"list must be names|detail")
            limit = None
            if "limit" in query:
                try:
                    limit = int(query["limit"])
                except ValueError:
                    return Response(status=400, body=b"bad limit")
            entries = mw.list_dir(
                account,
                path,
                detailed=mode == "detail",
                marker=query.get("marker"),
                limit=limit,
            )
            return Response(status=200, body=_listing_body(entries, mode))
        if request.method == "POST":
            op = query.get("op")
            dst = query.get("dst")
            if op not in ("move", "rename", "copy") or not dst:
                return Response(status=400, body=b"need op=move|rename|copy&dst=")
            if op == "copy":
                mw.copy(account, path, dst)
            else:
                mw.move(account, path, dst)
            return Response(status=201, headers={"Location": dst})
        return Response(status=405)

    # ------------------------------------------------------------------
    # File Content APIs
    # ------------------------------------------------------------------
    def _file_api(self, request: Request, account: str, path: str) -> Response:
        mw = self.middleware
        if request.method == "PUT":
            if_match = request.query.get("if_match")
            child = mw.write_file(account, path, request.body, if_match=if_match)
            return Response(
                status=201, headers={"ETag": child.etag, "Content-Length": str(child.size)}
            )
        if request.method == "GET":
            resolution = mw.lookup.resolve(account, path)
            if resolution.is_dir:
                entries = mw.list_dir(account, path)
                return Response(status=200, body=_listing_body(entries, "names"))
            query = request.query
            if "offset" in query or "length" in query:
                try:
                    offset = int(query.get("offset", "0"))
                    length = int(query.get("length", str(1 << 62)))
                except ValueError:
                    return Response(status=400, body=b"bad range")
                data = mw.read_file_range(account, path, offset, length)
                body = data if isinstance(data, bytes) else b""
                return Response(status=206, headers={"X-Range-Offset": str(offset)}, body=body)
            data = mw.read_file(account, path)
            body = data if isinstance(data, bytes) else b""
            return Response(status=200, body=body)
        if request.method == "HEAD":
            resolution = mw.stat(account, path)
            child = resolution.child
            headers = {"X-Kind": "dir" if resolution.is_dir else "file"}
            if child is not None:
                headers["Content-Length"] = str(child.size)
                if child.etag:
                    headers["ETag"] = child.etag
                headers["X-Relative-Path"] = (
                    f"{resolution.parent_ns}::{child.name}"
                )
            return Response(status=204, headers=headers)
        if request.method == "DELETE":
            mw.delete_file(account, path)
            return Response(status=204)
        return Response(status=405)


def _listing_body(entries, mode: str) -> bytes:
    if mode == "detail":
        lines = [
            f"{e.name}\t{e.kind}\t{e.size}\t{e.etag or '-'}" for e in entries
        ]
    else:
        lines = [e.name for e in entries]
    return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")
