"""The H2 Lookup module (paper §3.2, §4.2).

H2 offers two file-access methods:

* **quick** -- given a namespace-decorated relative path like
  ``N02::file1``, hash it and fetch the object directly: O(1);
* **regular** -- given a full path ``/home/ubuntu/file1`` of depth d,
  hash each directory name level by level, walking d NameRings: O(d).

The walk goes through the middleware's File Descriptor Cache, so hot
directories resolve without touching the store; the Fig 13 benchmark
drops caches between measurements to expose the cold O(d) behaviour.
A cold walk through a *sharded* directory (``nr:`` holds a manifest,
see :mod:`repro.core.shards`) fans the shard GETs out in parallel
lanes, so resolution latency stays one round-trip deep per level even
at 500k children.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcloud.errors import NotADirectory, PathNotFound
from .namering import KIND_DIR, Child
from .namespace import Namespace, parent_and_base, split_path


@dataclass(frozen=True)
class Resolution:
    """The result of resolving a full path level by level."""

    path: str
    ns_chain: tuple[Namespace, ...]  # namespaces of every ancestor dir
    child: Child | None  # None when the path is the account root

    @property
    def parent_ns(self) -> Namespace:
        return self.ns_chain[-1]

    @property
    def is_root(self) -> bool:
        return self.child is None

    @property
    def is_dir(self) -> bool:
        return self.child is None or self.child.kind == KIND_DIR

    @property
    def dir_ns(self) -> Namespace:
        """The namespace of the resolved directory itself."""
        if self.child is None:
            return self.ns_chain[-1]
        if self.child.kind != KIND_DIR or self.child.ns is None:
            raise NotADirectory(self.path)
        return Namespace(self.child.ns)


class H2Lookup:
    """Level-by-level resolution over a middleware's NameRings."""

    def __init__(self, middleware):
        self._mw = middleware

    def resolve(self, account: str, path: str, use_cache: bool = True) -> Resolution:
        """Resolve a full path to its parent chain and final child.

        Raises :class:`PathNotFound` if any component is missing (or
        fake-deleted) and :class:`NotADirectory` if a non-final
        component is a file.  Cost: one NameRing load per level that
        misses the descriptor cache.
        """
        components = split_path(path)
        ns = Namespace.root(account)
        chain = [ns]
        child: Child | None = None
        tracer = self._mw.tracer
        for i, name in enumerate(components):
            if tracer.noop:
                child, ns = self._resolve_level(
                    components, i, name, ns, chain, use_cache
                )
                continue
            with tracer.span(
                "lookup.hop",
                tags={"node": self._mw.node_id, "name": name, "depth": i},
            ):
                child, ns = self._resolve_level(
                    components, i, name, ns, chain, use_cache
                )
        return Resolution(path=path, ns_chain=tuple(chain), child=child)

    def _resolve_level(
        self,
        components: list[str],
        i: int,
        name: str,
        ns: Namespace,
        chain: list[Namespace],
        use_cache: bool,
    ) -> tuple[Child, Namespace]:
        """One NameRing hop of the O(d) walk; appends to ``chain``."""
        mw = self._mw
        fd = mw.load_ring(ns, use_cache=use_cache)
        child = fd.view().get(name)
        if child is None and use_cache and fd.loaded:
            if mw.config.negative_cache and name in fd.negative:
                # A store revalidation already confirmed this miss and
                # nothing has invalidated it since (no local write, no
                # absorbed remote state): skip the double-GET.
                mw._negative_hits.inc()
            else:
                # Revalidate on miss: the cached ring may predate an
                # update another middleware merged into the store.
                # Only failed lookups pay this extra GET; positive
                # cache hits stay free (eventual consistency with
                # read-repair on the miss path).  ``load_ring`` merges
                # the reload back into the cached descriptor, so the
                # GET is paid once per staleness, not once per miss.
                mw._revalidations.inc()
                fd = mw.load_ring(ns, use_cache=False)
                child = fd.view().get(name)
                if (
                    child is None
                    and mw.config.negative_cache
                    and not fd.stale
                ):
                    # The store itself just said "absent": remember it.
                    # (Never on a degraded serve -- stale rings carry no
                    # authority about absence.)
                    fd.negative.add(name)
        if child is None:
            raise PathNotFound("/" + "/".join(components[: i + 1]))
        if i != len(components) - 1:
            if child.kind != KIND_DIR or child.ns is None:
                raise NotADirectory("/" + "/".join(components[: i + 1]))
            ns = Namespace(child.ns)
            chain.append(ns)
        return child, ns

    def resolve_dir(
        self, account: str, path: str, use_cache: bool = True
    ) -> Namespace:
        """Resolve a path that must be a directory; returns its namespace."""
        resolution = self.resolve(account, path, use_cache=use_cache)
        return resolution.dir_ns

    def resolve_parent(
        self, account: str, path: str, use_cache: bool = True
    ) -> tuple[Namespace, str]:
        """Resolve everything but the last component: (parent_ns, base)."""
        parent, base = parent_and_base(path)
        if parent == "/":
            return Namespace.root(account), base
        return self.resolve_dir(account, parent, use_cache=use_cache), base

    def try_resolve(
        self, account: str, path: str, use_cache: bool = True
    ) -> Resolution | None:
        """Resolution or None -- for existence probes."""
        try:
            return self.resolve(account, path, use_cache=use_cache)
        except (PathNotFound, NotADirectory):
            return None
