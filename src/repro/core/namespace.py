"""Namespaces and namespace-decorated paths (paper §3.1, Figure 4a).

H2 translates every full directory/file path into a *namespace-decorated
relative path*: ``/home/ubuntu/file1`` becomes ``N02::file1`` where
``N02`` is the universally unique identifier of the parent directory
``/home/ubuntu``.  The UUID records which middleware node created the
directory, that node's creation sequence number, and the timestamp --
the paper's example is ``06.01.1469346604539`` for "the 6th directory
created by the 1st storage node at UNIX timestamp 1469346604539".

This module owns:

* :class:`Namespace` / :class:`NamespaceAllocator` -- UUID issue & parse;
* POSIX-ish path handling (:func:`split_path`, :func:`normalize_path`);
* the object-naming scheme that maps H2 entities onto flat object
  names (``nr:``/``dir:``/``f:``/``patch:`` prefixes), including the
  O(1) relative-path file key the quick access method hashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcloud.clock import SimClock
from ..simcloud.errors import InvalidPath

SEPARATOR = "::"  # namespace decoration, as in N02::file1


@dataclass(frozen=True)
class Namespace:
    """A directory's universally unique identifier."""

    uuid: str

    def __str__(self) -> str:
        return self.uuid

    @classmethod
    def root(cls, account: str) -> "Namespace":
        """The well-known namespace of an account's root directory.

        Deterministically derived from the account name so that any
        middleware can locate the root without consulting an index --
        the single bootstrapping hash the whole filesystem hangs off.
        """
        if not account or "/" in account or SEPARATOR in account:
            raise InvalidPath(account, "bad account name")
        return cls(uuid=f"root.{account}")

    @property
    def is_root(self) -> bool:
        return self.uuid.startswith("root.")


class NamespaceAllocator:
    """Issues fresh directory namespaces on one middleware node.

    The UUID is ``<seq>.<node>.<timestamp-us>`` exactly in the paper's
    spirit: sequence numbers are per-node, so two nodes can never mint
    the same namespace without coordination.
    """

    def __init__(self, node_id: int, clock: SimClock):
        self._node_id = node_id
        self._clock = clock
        self._seq = 0

    def next(self) -> Namespace:
        self._seq += 1
        return Namespace(uuid=f"{self._seq}.{self._node_id}.{self._clock.now_us}")

    @property
    def issued(self) -> int:
        return self._seq


def decorate(ns: Namespace, name: str) -> str:
    """Build the namespace-decorated relative path, e.g. ``N02::file1``."""
    return f"{ns.uuid}{SEPARATOR}{name}"


def parse_decorated(rel_path: str) -> tuple[Namespace, str]:
    """Inverse of :func:`decorate`."""
    if SEPARATOR not in rel_path:
        raise InvalidPath(rel_path, "missing namespace decoration")
    uuid, name = rel_path.split(SEPARATOR, 1)
    if not uuid or not name:
        raise InvalidPath(rel_path, "empty namespace or name")
    return Namespace(uuid=uuid), name


# ----------------------------------------------------------------------
# POSIX-ish path handling
# ----------------------------------------------------------------------
def normalize_path(path: str) -> str:
    """Canonical absolute form: leading '/', no trailing '/', no empties."""
    return "/" + "/".join(split_path(path))


def split_path(path: str) -> list[str]:
    """Split an absolute path into components, validating each.

    '/' yields [].  Rejects relative paths, empty components ('//'),
    '.'/'..', and names containing the namespace separator.
    """
    if not path or not path.startswith("/"):
        raise InvalidPath(path, "must be absolute")
    components = [c for c in path.split("/") if c != ""]
    if "//" in path:
        raise InvalidPath(path, "empty component")
    for component in components:
        validate_name(component, context=path)
    return components


def validate_name(name: str, context: str | None = None) -> None:
    """Check a single file/directory name."""
    shown = context if context is not None else name
    if not name:
        raise InvalidPath(shown, "empty name")
    if name in (".", ".."):
        raise InvalidPath(shown, "'.'/'..' not supported")
    if "/" in name:
        raise InvalidPath(shown, "'/' inside a name")
    if SEPARATOR in name:
        raise InvalidPath(shown, f"{SEPARATOR!r} is reserved")
    if "\n" in name or "\x00" in name:
        raise InvalidPath(shown, "control characters in name")


def parent_and_base(path: str) -> tuple[str, str]:
    """('/a/b/c') -> ('/a/b', 'c').  The root has no base."""
    components = split_path(path)
    if not components:
        raise InvalidPath(path, "root has no parent")
    return "/" + "/".join(components[:-1]), components[-1]


def join(parent: str, name: str) -> str:
    validate_name(name)
    return (parent.rstrip("/") or "") + "/" + name


def depth_of(path: str) -> int:
    """Directory depth d as the paper counts it: /home/ubuntu/file1 -> 3."""
    return len(split_path(path))


# ----------------------------------------------------------------------
# object-naming scheme (how H2 entities land on the flat store)
# ----------------------------------------------------------------------
def namering_key(ns: Namespace) -> str:
    """The object holding a directory's NameRing.

    For a directory sharded past the split threshold this object holds
    the small ``H2NRM`` manifest instead of the ring itself; the child
    tuples then live under :func:`ring_shard_key` payloads.
    """
    return f"nr:{ns.uuid}"


def ring_shard_key(ns: Namespace, epoch: int, shard: int) -> str:
    """One shard payload of a sharded NameRing (docs/PROTOCOL.md §11).

    The key keeps the ``nr:`` prefix so GC/fsck prefix walks cover
    shard payloads without a second scan, and carries the manifest
    epoch so resharding is crash-atomic: a new shard set is written
    under a fresh epoch, the manifest flip is the commit point, and
    orphaned old-epoch payloads are swept by GC.
    """
    return f"nr:{ns.uuid}/s{epoch}-{shard:04d}"


def directory_key(ns: Namespace) -> str:
    """The object holding a directory's own metadata."""
    return f"dir:{ns.uuid}"


def file_key(ns: Namespace, name: str) -> str:
    """The object holding a file's content.

    This *is* the quick access method: hashing ``N02::file1`` locates
    the bytes in one step, no directory walk (paper §3.2).
    """
    return f"f:{decorate(ns, name)}"


def patch_key(ns: Namespace, node_id: int, patch_seq: int) -> str:
    """A NameRing patch object, e.g. N97's ``...Node01.Patch03``."""
    return f"patch:{ns.uuid}:Node{node_id:02d}.Patch{patch_seq:06d}"
