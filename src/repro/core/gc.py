"""Deferred deletion: the garbage collector behind fake deletion.

H2Cloud never removes data inline: RMDIR and DELETE just tombstone a
NameRing tuple (paper §3.3.3a), leaving the subtree's objects --
file bodies, directory records, NameRings -- in the store.  Something
must eventually reclaim them; the paper defers this ("we leave the
work of really removing..."), so the collector here is the natural
completion of that design: a mark-and-sweep pass over one account's
object graph, run as background maintenance.

* **mark**: walk the live tree from the account root, collecting every
  reachable object key (directory records, NameRings, file bodies);
* **sweep**: delete unreachable ``dir:``/``nr:``/``f:`` objects, except
  patch objects still referenced by a pending chain;
* **compact**: strip tombstones from stored rings when no in-flight
  rumor or dirty chain could resurrect them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcloud.errors import ObjectNotFound
from . import formatter, shards
from .namering import KIND_DIR
from .namespace import Namespace, directory_key, file_key, namering_key


@dataclass(frozen=True)
class GCReport:
    """What one collection pass accomplished."""

    marked: int
    swept: int
    reclaimed_bytes: int
    compacted_rings: int


def collect_once(middleware) -> GCReport:
    """One cluster-wide mark-and-sweep pass, safety-gated, no pumping.

    The single-step entry point for the deterministic-simulation
    explorer: unlike ``H2CloudFS.gc`` it does *not* drain mergers or
    gossip first, so the pass runs against whatever asynchrony is in
    flight -- and the collector's own ``_safe_to_collect`` guard decides
    whether sweeping is allowed at this instant.
    """
    return GarbageCollector(middleware).collect()


class GarbageCollector:
    """Mark-and-sweep over the H2 object graph of given accounts."""

    def __init__(self, middleware, accounts: list[str] | None = None):
        self._mw = middleware
        # Marking fewer accounts than the cluster hosts would sweep the
        # others' objects, so the default scope is every account the
        # store knows about.
        if accounts is None:
            accounts = sorted(middleware.store.accounts)
        self._accounts = list(accounts)
        missing = set(self._accounts) - middleware.store.accounts
        if missing:
            raise ValueError(f"unknown accounts: {sorted(missing)}")
        if set(self._accounts) != middleware.store.accounts:
            raise ValueError(
                "GC must cover every account on the cluster "
                f"(missing {sorted(middleware.store.accounts - set(self._accounts))})"
            )

    # ------------------------------------------------------------------
    def collect(self) -> GCReport:
        """One full pass.  Runs entirely in background-accounted time."""
        mw = self._mw
        with mw.tracer.span("gc.collect", tags={"node": mw.node_id}) as span:
            report = mw.background(self._collect)
            span.tag("marked", report.marked)
            span.tag("swept", report.swept)
        metrics = mw.metrics
        metrics.counter("gc.passes").inc()
        metrics.counter("gc.swept").inc(report.swept)
        metrics.counter("gc.reclaimed_bytes").inc(report.reclaimed_bytes)
        metrics.counter("gc.compacted_rings").inc(report.compacted_rings)
        return report

    def _collect(self) -> GCReport:
        if not self._safe_to_collect():
            return GCReport(marked=0, swept=0, reclaimed_bytes=0, compacted_rings=0)
        reachable, ring_nss = self._mark()
        swept, reclaimed = self._sweep(reachable)
        compacted = self._compact(ring_nss)
        return GCReport(
            marked=len(reachable),
            swept=swept,
            reclaimed_bytes=reclaimed,
            compacted_rings=compacted,
        )

    def _safe_to_collect(self) -> bool:
        """Refuse to run while updates are still propagating."""
        network = self._mw.network
        if network is not None and network.in_flight:
            return False
        peers = network.members if network is not None else [self._mw]
        if any(peer.fd_cache.dirty_descriptors() for peer in peers):
            return False
        return self._views_current(peers)

    def _views_current(self, peers) -> bool:
        """Every cached ring view is at least as new as the stored ring.

        In-flight rumors and dirty chains are not the only propagation
        state: a peer that *missed* a rumor (message loss) holds a clean
        but stale descriptor.  Compacting a tombstone -- or sweeping the
        file body it hides -- while such a peer still shows the child as
        live would let the peer's next merge resurrect the name.  The
        sweep and compaction therefore wait until, for every child in
        every stored ring, each peer's cached copy carries an equal or
        newer tuple (anti-entropy guarantees this point is reached).
        """
        store = self._mw.store
        for peer in peers:
            for fd in peer.fd_cache.descriptors():
                if not fd.loaded:
                    continue  # never read: next use loads fresh state
                try:
                    stored = shards.read_stored(store, fd.ns).ring
                except (ObjectNotFound, formatter.FormatError):
                    continue
                for name, child in stored.children.items():
                    ours = fd.ring.children.get(name)
                    if ours is None or ours.timestamp < child.timestamp:
                        return False
        return True

    # ------------------------------------------------------------------
    def _mark(self) -> tuple[set[str], list[Namespace]]:
        store = self._mw.store
        reachable: set[str] = set()
        ring_nss: list[Namespace] = []
        for account in self._accounts:
            stack = [Namespace.root(account)]
            while stack:
                ns = stack.pop()
                dkey, rkey = directory_key(ns), namering_key(ns)
                reachable.update((dkey, rkey))
                ring_nss.append(ns)
                try:
                    loaded = shards.read_stored(store, ns)
                except ObjectNotFound:
                    continue
                if loaded.manifest is not None:
                    # The current epoch's shard payloads are live; any
                    # older epoch left by a torn reshard is garbage.
                    reachable.update(shards.shard_keys(ns, loaded.manifest))
                for child in loaded.ring.live_children():
                    if child.kind == KIND_DIR:
                        stack.append(Namespace(child.ns))
                    else:
                        reachable.add(file_key(ns, child.name))
        return reachable, ring_nss

    def _sweep(self, reachable: set[str]) -> tuple[int, int]:
        store = self._mw.store
        protected = self._protected_patches()
        swept = 0
        reclaimed = 0
        for name in sorted(store.names()):
            if not name.startswith(("dir:", "nr:", "f:", "patch:")):
                continue
            if name in reachable:
                continue
            if name.startswith("patch:") and name in protected:
                continue
            try:
                reclaimed += store.head(name).size
                store.delete(name)
                swept += 1
            except ObjectNotFound:  # pragma: no cover - racing deletes
                continue
        return swept, reclaimed

    def _protected_patches(self) -> set[str]:
        network = self._mw.network
        peers = network.members if network is not None else [self._mw]
        protected: set[str] = set()
        for peer in peers:
            for fd in peer.fd_cache.dirty_descriptors():
                protected.update(p.object_name for p in fd.chain.patches)
        return protected

    # ------------------------------------------------------------------
    def _compact(self, ring_nss: list[Namespace]) -> int:
        """Rewrite stored rings without tombstones (safe: system quiet).

        For sharded rings this is also the manifest-heal point: a
        write-back that raced an outage can leave the manifest's
        digests behind the shard payloads, so whenever the recomputed
        digests disagree with the stored manifest the manifest is
        rewritten -- even if no tombstone needed stripping.
        """
        store = self._mw.store
        policy = self._mw.shard_policy
        compacted = 0
        for ns in ring_nss:
            try:
                loaded = shards.read_stored(store, ns)
            except ObjectNotFound:
                continue
            if loaded.ring.needs_compaction:
                shards.write_stored(
                    store,
                    ns,
                    loaded.ring.compacted(),
                    policy,
                    loaded.manifest,
                )
                compacted += 1
            elif loaded.manifest is not None:
                healed = shards.manifest_of(
                    loaded.shards, epoch=loaded.manifest.epoch
                )
                if healed != loaded.manifest:
                    store.put(
                        namering_key(ns), formatter.dumps_manifest(healed)
                    )
        # Caches may still hold tombstoned versions; refresh loaded rings.
        network = self._mw.network
        peers = network.members if network is not None else [self._mw]
        for peer in peers:
            for fd in peer.fd_cache.descriptors():
                if fd.loaded and fd.ring.needs_compaction and not fd.dirty:
                    fd.ring = fd.ring.compacted()
        return compacted
