"""`repro.core` -- the Hierarchical Hash (H2) data structure and H2Cloud.

The paper's primary contribution: namespaces, NameRings, the patch +
gossip maintenance protocol, the H2 lookup algorithms, the middleware
that ties them together, and the :class:`H2CloudFS` public API.
"""

from .descriptor import CacheStats, FileDescriptor, FileDescriptorCache
from .formatter import (
    DirectoryRecord,
    FormatError,
    ShardDigest,
    ShardManifest,
    dumps_directory,
    dumps_manifest,
    dumps_patch,
    dumps_ring,
    loads_directory,
    loads_manifest,
    loads_patch,
    loads_ring,
)
from .fs import H2CloudFS
from .gc import GarbageCollector, GCReport
from .gossip import GossipNetwork, Rumor
from .lookup import H2Lookup, Resolution
from .merger import BackgroundMerger
from .middleware import Entry, H2Config, H2Middleware
from .namering import KIND_DIR, KIND_FILE, Child, NameRing, merge, merge_all
from .namespace import (
    Namespace,
    NamespaceAllocator,
    decorate,
    depth_of,
    directory_key,
    file_key,
    join,
    namering_key,
    normalize_path,
    parent_and_base,
    parse_decorated,
    patch_key,
    ring_shard_key,
    split_path,
    validate_name,
)
from .monitoring import LatencyHistogram, Monitor, deployment_report
from .shards import ShardPolicy, StoredRing
from .patch import Patch, PatchChain, PatchCounter
from .streams import FileWriter
from .webapi import H2WebAPI, Request, Response

__all__ = [
    "BackgroundMerger",
    "CacheStats",
    "Child",
    "DirectoryRecord",
    "Entry",
    "FileDescriptor",
    "FileDescriptorCache",
    "FileWriter",
    "FormatError",
    "GCReport",
    "GarbageCollector",
    "GossipNetwork",
    "H2CloudFS",
    "H2Config",
    "H2Lookup",
    "H2Middleware",
    "H2WebAPI",
    "KIND_DIR",
    "KIND_FILE",
    "LatencyHistogram",
    "Monitor",
    "NameRing",
    "Namespace",
    "NamespaceAllocator",
    "Patch",
    "PatchChain",
    "PatchCounter",
    "Request",
    "Resolution",
    "Response",
    "Rumor",
    "ShardDigest",
    "ShardManifest",
    "ShardPolicy",
    "StoredRing",
    "decorate",
    "deployment_report",
    "depth_of",
    "directory_key",
    "dumps_directory",
    "dumps_manifest",
    "dumps_patch",
    "dumps_ring",
    "file_key",
    "join",
    "loads_directory",
    "loads_manifest",
    "loads_patch",
    "loads_ring",
    "merge",
    "merge_all",
    "namering_key",
    "ring_shard_key",
    "normalize_path",
    "parent_and_base",
    "parse_decorated",
    "patch_key",
    "split_path",
    "validate_name",
]
