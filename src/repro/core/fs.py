"""H2CloudFS: the user-facing filesystem API (deliverable (a)'s front door).

Wraps an object-storage cluster plus one or more
:class:`~repro.core.middleware.H2Middleware` nodes behind POSIX-like
calls -- ``mkdir``, ``rmdir``, ``write``, ``read``, ``delete``,
``move``, ``rename``, ``listdir``, ``copy``, ``stat``, ``walk`` -- the
operation vocabulary the paper evaluates.  Requests round-robin across
middlewares exactly as a load balancer would spread clients over Swift
proxies; maintenance (merging, gossip, GC) is driven explicitly with
:meth:`pump` so tests and benchmarks control when asynchrony resolves.

Typical use::

    from repro.core import H2CloudFS
    fs = H2CloudFS.launch(account="alice")
    fs.mkdir("/photos")
    fs.write("/photos/cat.jpg", b"...")
    fs.listdir("/photos")            # ["cat.jpg"]   -- one NameRing GET
    rel = fs.relative_path_of("/photos/cat.jpg")
    fs.read_relative(rel)            # O(1) quick access (paper §3.2)
"""

from __future__ import annotations

from ..obs.trace import NULL_TRACER, Tracer
from ..simcloud.cluster import SwiftCluster
from ..simcloud.failures import MessageLoss
from .gc import GarbageCollector, GCReport
from .gossip import GossipNetwork
from .lookup import Resolution
from .middleware import Entry, H2Config, H2Middleware
from .namering import KIND_DIR


class H2CloudFS:
    """One account's filesystem hosted entirely in an object storage cloud."""

    name = "h2cloud"  # identifier used by the benchmark harness

    def __init__(
        self,
        cluster: SwiftCluster,
        account: str = "user",
        middlewares: int = 1,
        config: H2Config | None = None,
        gossip_fanout: int = 2,
        message_loss: MessageLoss | None = None,
        tracing: bool = False,
        tracer: Tracer | None = None,
    ):
        """``tracing=True`` (or an explicit shared ``tracer``) enables
        causal tracing: every middleware and the object store record
        into one :class:`~repro.obs.trace.Tracer`, so span trees follow
        operations across nodes.  Off by default -- the disabled path is
        a shared no-op tracer."""
        if middlewares < 1:
            raise ValueError("need at least one middleware")
        self.cluster = cluster
        self.account = account
        if tracer is None:
            tracer = Tracer(cluster.clock) if tracing else NULL_TRACER
        self.tracer = tracer
        if not tracer.noop:
            cluster.store.tracer = tracer
        self.network = (
            GossipNetwork(
                fanout=gossip_fanout,
                loss=message_loss,
                # Rumor coalescing is part of the gossip-digest traffic
                # mechanism (docs/PERFORMANCE.md): same flag, same wire.
                coalesce=bool(config is not None and config.gossip_digests),
            )
            if middlewares > 1
            else None
        )
        if self.network is not None:
            # Gossip links share the cluster's partition matrix, so one
            # scheduled cut can sever request and rumor paths together.
            self.network.partitions = getattr(cluster, "partitions", None)
        self.middlewares = [
            H2Middleware(
                node_id=i + 1,
                store=cluster.store,
                config=config,
                network=self.network,
                tracer=tracer,
            )
            for i in range(middlewares)
        ]
        self._next = 0
        if not self.middlewares[0].account_exists(account):
            self.middlewares[0].create_account(account)

    @classmethod
    def launch(
        cls,
        account: str = "user",
        middlewares: int = 1,
        config: H2Config | None = None,
        tracing: bool = False,
    ) -> "H2CloudFS":
        """An H2Cloud over a fresh rack-scale simulated cluster."""
        return cls(
            SwiftCluster.rack_scale(),
            account=account,
            middlewares=middlewares,
            config=config,
            tracing=tracing,
        )

    # ------------------------------------------------------------------
    # middleware dispatch
    # ------------------------------------------------------------------
    def _mw(self) -> H2Middleware:
        """Round-robin across middlewares, like a proxy load balancer."""
        mw = self.middlewares[self._next % len(self.middlewares)]
        self._next += 1
        return mw

    # ------------------------------------------------------------------
    # the POSIX-like surface
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        self._mw().mkdir(self.account, path)

    def makedirs(self, path: str) -> None:
        """mkdir -p: create every missing ancestor."""
        from .namespace import split_path

        mw = self._mw()
        partial = ""
        for component in split_path(path):
            partial += "/" + component
            if not mw.exists(self.account, partial):
                mw.mkdir(self.account, partial)

    def rmdir(self, path: str, recursive: bool = True) -> None:
        self._mw().rmdir(self.account, path, recursive=recursive)

    def write(self, path: str, data: bytes, if_match: str | None = None) -> None:
        """WRITE, optionally conditional on the current etag.

        ``if_match=""`` means "create only" (fail if the file exists);
        any other value requires the existing entry's etag to match --
        the optimistic-concurrency handshake sync clients use to detect
        conflicting updates.
        """
        self._mw().write_file(self.account, path, data, if_match=if_match)

    def etag_of(self, path: str) -> str:
        """The current entry's etag (for a later conditional write)."""
        from ..simcloud.errors import IsADirectory

        resolution = self.stat(path)
        if resolution.is_dir:
            raise IsADirectory(path)
        return resolution.child.etag

    def read(self, path: str) -> bytes:
        return self._mw().read_file(self.account, path)

    def write_many(self, dir_path: str, items: list[tuple[str, object]]) -> None:
        """Bulk-load many files into one directory with a single patch."""
        self._mw().write_files(self.account, dir_path, items)

    def open_write(self, path: str):
        """Open a streaming writer (paper §3.3.3b's I/O stream interface).

        Merging on the serving middleware is blocked until the stream
        closes and its patch is submitted::

            with fs.open_write("/videos/movie.mkv") as w:
                w.write(chunk1)
                w.write(chunk2)
        """
        return self._mw().open_write(self.account, path)

    def read_relative(self, rel_path: str) -> bytes:
        """Quick O(1) access by namespace-decorated relative path."""
        return self._mw().read_file_relative(rel_path)

    def relative_path_of(self, path: str) -> str:
        return self._mw().relative_path_of(self.account, path)

    def delete(self, path: str) -> None:
        self._mw().delete_file(self.account, path)

    def move(self, src: str, dst: str) -> None:
        self._mw().move(self.account, src, dst)

    def rename(self, src: str, dst: str) -> None:
        self._mw().rename(self.account, src, dst)

    def copy(self, src: str, dst: str) -> int:
        return self._mw().copy(self.account, src, dst)

    def listdir(
        self,
        path: str = "/",
        detailed: bool = False,
        marker: str | None = None,
        limit: int | None = None,
    ) -> list:
        """Names (cheap, one ring GET) or full :class:`Entry` objects.

        ``marker``/``limit`` paginate Swift-style: entries strictly
        after ``marker``, at most ``limit`` of them.
        """
        entries = self._mw().list_dir(
            self.account, path, detailed=detailed, marker=marker, limit=limit
        )
        if detailed:
            return entries
        return [e.name for e in entries]

    def read_range(self, path: str, offset: int, length: int):
        """Ranged READ: only the requested window crosses the wire."""
        return self._mw().read_file_range(self.account, path, offset, length)

    def du(self, path: str = "/") -> tuple[int, int, int]:
        """(directories, files, logical bytes) under ``path`` --
        computed from NameRing metadata alone, O(directories)."""
        return self._mw().usage(self.account, path)

    def stat(self, path: str) -> Resolution:
        return self._mw().stat(self.account, path)

    def exists(self, path: str) -> bool:
        return self._mw().exists(self.account, path)

    def is_dir(self, path: str) -> bool:
        resolution = self._mw().lookup.try_resolve(self.account, path)
        return resolution is not None and resolution.is_dir

    def walk(self, top: str = "/"):
        """Yield (dirpath, dirnames, filenames) top-down, like os.walk."""
        entries = self._mw().list_dir(self.account, top, detailed=False)
        dirnames = [e.name for e in entries if e.kind == KIND_DIR]
        filenames = [e.name for e in entries if e.kind != KIND_DIR]
        yield top, dirnames, filenames
        for name in dirnames:
            child = (top.rstrip("/") or "") + "/" + name
            yield from self.walk(child)

    def tree_size(self, top: str = "/") -> tuple[int, int]:
        """(directories, files) under ``top`` -- audits and tests."""
        dirs = files = 0
        for _, dirnames, filenames in self.walk(top):
            dirs += len(dirnames)
            files += len(filenames)
        return dirs, files

    # ------------------------------------------------------------------
    # maintenance control
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Drain all asynchrony: mergers, then gossip to convergence."""
        for mw in self.middlewares:
            mw.merger.run_until_clean()
        if self.network is not None:
            self.network.converge()

    def drop_caches(self) -> None:
        """Evict every clean descriptor (benchmarks' cold-cache knob)."""
        for mw in self.middlewares:
            mw.fd_cache.drop_clean()

    def repair(self):
        """Run a replica-repair sweep over the whole deployment.

        Returns the :class:`~repro.simcloud.repair.RepairReport`; run it
        after node recoveries so crash/wipe outages actually heal.
        """
        from ..simcloud.repair import RepairSweeper

        return RepairSweeper(self.store).sweep()

    def scrub(self):
        """Run a checksum scrub over every replica on the cluster.

        Returns the :class:`~repro.simcloud.scrub.ScrubReport`.  Run it
        periodically (and after corruption storms): silent bit-rot on
        cold objects is only ever found by scrubbing, and an unscrubbed
        rotten replica is a candidate repair source.
        """
        return self.store.scrub()

    def gc(self) -> GCReport:
        """One mark-and-sweep pass over every account on the cluster.

        GC is cluster-wide by construction: object keys carry opaque
        namespaces, so the mark phase must walk all accounts to know
        what is reachable.
        """
        self.pump()
        return GarbageCollector(self.middlewares[0]).collect()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def clock(self):
        return self.cluster.clock

    @property
    def store(self):
        return self.cluster.store
