"""NameRing patches and per-node patch chains (paper §3.3.2, Phase 1-2).

Every filesystem operation that changes a NameRing submits a *patch*: a
log object recording the update, named after the target NameRing, the
submitting node, and an incremental patch number --
``N97::/NameRing/.Node01.Patch03`` in the paper's example.  A patch is
"in the same format as a NameRing", so its payload here *is* a
:class:`~repro.core.namering.NameRing` holding the touched tuples.

Within one middleware node, unmerged patches for a ring are arranged as
a linked list (the *patch chain*) starting at patch No. 0; the
intra-node merging step folds the chain front-to-back into one "big"
patch before merging that into the ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.trace import TraceContext
from . import formatter
from .namering import NameRing, merge_all
from .namespace import Namespace, patch_key


@dataclass(frozen=True)
class Patch:
    """One submitted update to one NameRing.

    ``trace`` is in-memory observability metadata only: the causal
    context of the operation that submitted the patch, so a later
    (possibly background) merge can link its span to the originating
    request.  It is deliberately excluded from equality and from
    ``to_bytes`` -- the wire format, and therefore every simulated
    cost and deterministic-simulation digest, is identical with
    tracing on or off.
    """

    target_ns: Namespace
    node_id: int
    patch_seq: int
    payload: NameRing
    trace: TraceContext | None = field(default=None, compare=False, repr=False)

    @property
    def object_name(self) -> str:
        """Where this patch lives in the object store."""
        return patch_key(self.target_ns, self.node_id, self.patch_seq)

    def to_bytes(self) -> bytes:
        return formatter.dumps_patch(self.payload)

    @classmethod
    def from_bytes(
        cls, target_ns: Namespace, node_id: int, patch_seq: int, data: bytes
    ) -> "Patch":
        return cls(
            target_ns=target_ns,
            node_id=node_id,
            patch_seq=patch_seq,
            payload=formatter.loads_patch(data),
        )


@dataclass
class PatchGroup:
    """An open group-commit window: patches coalesced before their PUT.

    With ``H2Config.group_commit`` on, ``submit_patch`` does not PUT
    every patch individually; same-ring submissions landing within one
    sim-clock window merge their payloads here first.  Per-entry
    timestamps ride along untouched inside the merged payload, so the
    eventual single patch object is merge-equivalent to the individual
    patches it replaced -- only the PUT count changes.  ``seq`` is
    claimed when the group opens so chain ordering is preserved.
    """

    opened_us: int
    seq: int
    payload: NameRing
    absorbed: int = 0
    trace: TraceContext | None = field(default=None, repr=False)


@dataclass
class PatchChain:
    """The linked list of unmerged patches for one ring on one node.

    The paper starts chains at patch No. 0, "whose absence indicates
    that no other version exists in this node"; we keep the same
    front-to-back merge order.
    """

    target_ns: Namespace
    patches: list[Patch] = field(default_factory=list)

    def append(self, patch: Patch) -> None:
        if patch.target_ns != self.target_ns:
            raise ValueError(
                f"patch for {patch.target_ns} appended to chain of "
                f"{self.target_ns}"
            )
        if self.patches and patch.patch_seq <= self.patches[-1].patch_seq:
            raise ValueError(
                f"patch seq {patch.patch_seq} not increasing "
                f"(last {self.patches[-1].patch_seq})"
            )
        self.patches.append(patch)

    def fold(self) -> NameRing:
        """Merge the whole chain into one big patch payload, in order."""
        return merge_all([p.payload for p in self.patches])

    def clear(self) -> list[Patch]:
        """Drain the chain (after a successful merge); returns the drained."""
        drained, self.patches = self.patches, []
        return drained

    def __len__(self) -> int:
        return len(self.patches)

    def __bool__(self) -> bool:
        return bool(self.patches)


class PatchCounter:
    """Per-(node, ring) incremental patch numbering."""

    def __init__(self, node_id: int):
        self._node_id = node_id
        self._counters: dict[str, int] = {}

    def next_seq(self, ns: Namespace) -> int:
        seq = self._counters.get(ns.uuid, -1) + 1
        self._counters[ns.uuid] = seq
        return seq
