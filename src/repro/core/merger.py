"""The Background Merger (paper §3.3.2 Phase 2 step 1, §4.5).

Submitted patches accumulate in per-ring patch chains inside each
middleware.  The merger drains a chain by (a) folding the chain
front-to-back into one "big" patch, (b) fetching the ring's stored
version, (c) running the NameRing merging algorithm, and (d) writing
the merged ring back -- after which the node has its local (eventually
consistent) version and the patch objects can be retired.

Steps (b)-(d) are shard-aware: when the stored ``nr:`` object is a
:class:`~repro.core.formatter.ShardManifest`, the read-merge-write in
``H2Middleware.store_ring_merged`` touches only the shards whose
digests differ from the merger's local view (see
:mod:`repro.core.shards`), so draining a one-name patch against a
500k-entry directory moves one shard's bytes, not the whole ring.

Cost accounting: when a merge runs as *background* work its store
traffic is measured and booked to ``ledger.background_us`` instead of
the foreground clock -- the paper's reported operation times cover the
client-visible path only, with merging asynchronous behind it.  The
``foreground`` flag exists for H2Cloud's write-through configuration
(one middleware, merge inline) and for the sync-vs-async ablation.
"""

from __future__ import annotations

from .descriptor import FileDescriptor
from .namespace import Namespace


class BackgroundMerger:
    """Drains patch chains into NameRings for one middleware node."""

    def __init__(self, middleware):
        self._mw = middleware
        registry = middleware.metrics
        self._merges = registry.counter("maintenance.merges")
        self._patches_applied = registry.counter("maintenance.patches_applied")
        self._single_steps = registry.counter("maintenance.merge_steps")

    @property
    def merges(self) -> int:
        return int(self._merges.value)

    @property
    def patches_applied(self) -> int:
        return int(self._patches_applied.value)

    @property
    def single_steps(self) -> int:
        return int(self._single_steps.value)

    # ------------------------------------------------------------------
    # the merge of one ring
    # ------------------------------------------------------------------
    def merge_ring(self, ns: Namespace, foreground: bool = False) -> bool:
        """Apply the pending chain for ``ns``; True if anything merged.

        Respects the §3.3.3b blocking rule: while a file stream is open
        on this middleware, merging is deferred (chains keep growing
        and drain once the stream's patch has been submitted).
        """
        if self._mw.merge_blocked:
            return False
        fd = self._mw.fd_cache.get_or_create(ns)
        if not fd.chain and fd.group is None:
            return False
        if foreground:
            if fd.group is not None:
                # An open group-commit window is pending dirty state:
                # close it (merge=False -- we fold the chain ourselves)
                # so the merge covers everything the client was acked.
                self._mw.flush_patch_group(fd, merge=False)
            self._apply(fd)
        else:

            def run() -> None:
                if fd.group is not None:
                    self._mw.flush_patch_group(fd, merge=False)
                if fd.chain:
                    self._apply(fd)

            self._mw.background(run)
        return True

    def _apply(self, fd: FileDescriptor) -> None:
        tracer = self._mw.tracer
        # Background merges run with no active span; linking to the
        # first chained patch's carried context stitches the merge (and
        # the gossip announcement it triggers) into the span tree of the
        # operation that submitted it.
        parent = None
        if tracer.current() is None and fd.chain.patches:
            parent = fd.chain.patches[0].trace
        with tracer.span(
            "merge.apply",
            tags={
                "node": self._mw.node_id,
                "ns": str(fd.ns),
                "patches": len(fd.chain),
            },
            parent=parent,
        ):
            big_patch = fd.chain.fold()
            # Read-merge-write via the same monotone path gossip uses
            # (the PR 2 clobber fix): entries the stored ring gained
            # from peers since our last load can no longer be erased by
            # a blind store_ring.  ``strict`` keeps the old outage
            # contract -- a failed GET aborts with the chain intact.
            self._mw.store_ring_merged(fd, extra=big_patch, strict=True)
            fd.loaded = True
            drained = fd.chain.clear()
            self._retire_patches(drained)
            self._merges.inc()
            self._patches_applied.inc(len(drained))
            self._mw.after_merge(fd)

    def _retire_patches(self, patches) -> None:
        """Delete applied patch objects from the store."""
        for patch in patches:
            self._mw.store.delete(patch.object_name, missing_ok=True)

    # ------------------------------------------------------------------
    # node-wide drain
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Merge exactly one dirty ring (oldest first); False if none.

        The single-step entry point the deterministic-simulation
        explorer interleaves between client operations: one background
        merge happens, every other chain keeps waiting.  Descriptor
        insertion order makes the choice reproducible.
        """
        for fd in self._mw.fd_cache.dirty_descriptors():
            if self.merge_ring(fd.ns, foreground=False):
                self._single_steps.inc()
                return True
        return False

    def run_once(self) -> int:
        """One background sweep; returns how many rings actually merged."""
        merged = 0
        for fd in self._mw.fd_cache.dirty_descriptors():
            if self.merge_ring(fd.ns, foreground=False):
                merged += 1
        return merged

    def run_until_clean(self, max_rounds: int = 64) -> int:
        """Sweep until no descriptor is dirty; returns total merges run."""
        total = 0
        for _ in range(max_rounds):
            merged = self.run_once()
            if merged == 0:
                return total
            total += merged
        raise RuntimeError("merger failed to quiesce (patch chains keep growing)")

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover_orphaned_patches(self) -> int:
        """Apply patch objects whose submitting middleware is gone.

        Phase 1 makes every patch durable *before* it is applied, so a
        middleware crash between submission and merge loses nothing:
        any node can later list ``patch:`` objects, reconstruct the
        updates, and merge them into the targeted NameRings.  Returns
        the number of patches recovered.  Idempotent -- the LWW merge
        absorbs re-applied patches, and recovered patch objects are
        retired like normally merged ones.
        """
        from .namespace import Namespace
        from .patch import Patch

        tracer = self._mw.tracer
        recovered = 0
        chained = {
            patch.object_name
            for fd in self._mw.fd_cache.descriptors()
            for patch in fd.chain.patches
        }
        by_ns: dict[str, list[tuple[int, int, str]]] = {}
        for name in sorted(self._mw.store.names()):
            if not name.startswith("patch:") or name in chained:
                continue
            # patch:<ns>:Node<NN>.Patch<PPPPPP>
            _, ns_uuid, tail = name.split(":", 2)
            node_part, patch_part = tail.split(".", 1)
            node_id = int(node_part.removeprefix("Node"))
            patch_seq = int(patch_part.removeprefix("Patch"))
            by_ns.setdefault(ns_uuid, []).append((node_id, patch_seq, name))
        for ns_uuid, found in by_ns.items():
            ns = Namespace(ns_uuid)
            with tracer.span(
                "merge.recover",
                tags={
                    "node": self._mw.node_id,
                    "ns": ns_uuid,
                    "patches": len(found),
                },
            ):
                fd = self._mw.fd_cache.get_or_create(ns)
                payload = None
                for node_id, patch_seq, name in sorted(found):
                    record = self._mw.store.get(name)
                    patch = Patch.from_bytes(ns, node_id, patch_seq, record.data)
                    payload = (
                        patch.payload
                        if payload is None
                        else payload.merge(patch.payload)
                    )
                    recovered += 1
                self._mw.store_ring_merged(fd, extra=payload, strict=True)
                fd.loaded = True
                for _, _, name in found:
                    self._mw.store.delete(name, missing_ok=True)
                self._mw.after_merge(fd)
        return recovered
