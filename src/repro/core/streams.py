"""Streaming file writes and the blocking rule (paper §3.3.3b).

"When inserting a large file ... it is required to generate a UUID and
the corresponding metadata, put the file into the cloud storage
through the I/O stream interface, and finally send a patch to modify
its parent directory's NameRing.  As the file streaming operation
takes longer time than directory operations, all the other merging
procedures are blocked until the file is fully written into the
storage interface and the patch is successfully submitted."

:class:`FileWriter` is that I/O stream: chunks accumulate (bytes or
sparse), the middleware's Background Merger is blocked for the
stream's lifetime, and :meth:`FileWriter.close` performs the atomic
PUT-then-patch sequence the paper prescribes -- a NameRing never
references bytes that are not durably stored.
"""

from __future__ import annotations

from ..simcloud.errors import InvalidPath, IsADirectory
from ..simcloud.sparse import SparseData
from .namering import Child, KIND_DIR, KIND_FILE
from .namespace import Namespace, file_key


class FileWriter:
    """An open write stream to one file path."""

    def __init__(self, middleware, account: str, path: str):
        self._mw = middleware
        self._account = account
        self._path = path
        parent_ns, name = middleware.lookup.resolve_parent(account, path)
        parent_fd = middleware.load_ring(parent_ns)
        existing = parent_fd.ring.get(name)
        if existing is not None and existing.kind == KIND_DIR:
            raise IsADirectory(path)
        self._parent_ns: Namespace = parent_ns
        self._name = name
        self._chunks: list = []
        self._sparse_bytes = 0
        self._closed = False
        self._aborted = False
        middleware.block_merging()

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return not self._closed and not self._aborted

    @property
    def bytes_buffered(self) -> int:
        return self._sparse_bytes + sum(
            len(c) for c in self._chunks if isinstance(c, bytes)
        )

    def write(self, chunk) -> "FileWriter":
        """Append a chunk (bytes or :class:`SparseData`)."""
        self._require_open()
        if isinstance(chunk, SparseData):
            self._sparse_bytes += chunk.size
        elif isinstance(chunk, (bytes, bytearray)):
            self._chunks.append(bytes(chunk))
        else:
            raise TypeError(f"cannot stream {type(chunk).__name__}")
        return self

    def close(self) -> Child:
        """Durably store the object, then submit the NameRing patch.

        The merge block is released between the PUT and the patch so
        the patch's own (auto) merge can run -- exactly the paper's
        ordering: stream fully written -> patch submitted -> merging
        resumes.
        """
        self._require_open()
        self._closed = True
        payload = self._assemble()
        info = self._mw.store.put(
            file_key(self._parent_ns, self._name),
            payload,
            meta={"account": self._account},
        )
        self._mw.unblock_merging()
        child = Child(
            name=self._name,
            timestamp=self._mw.next_timestamp(),
            kind=KIND_FILE,
            size=info.size,
            etag=info.etag,
        )
        self._mw.submit_patch(self._parent_ns, [child])
        return child

    def abort(self) -> None:
        """Drop the stream: nothing was stored, no patch is submitted."""
        if self._closed or self._aborted:
            return
        self._aborted = True
        self._chunks.clear()
        self._mw.unblock_merging()

    def _assemble(self):
        if self._sparse_bytes:
            total = self._sparse_bytes + sum(len(c) for c in self._chunks)
            return SparseData(size=total, tag=f"{self._parent_ns}::{self._name}")
        return b"".join(self._chunks)

    def _require_open(self) -> None:
        if self._closed:
            raise InvalidPath(self._path, "stream already closed")
        if self._aborted:
            raise InvalidPath(self._path, "stream aborted")

    # context-manager sugar: close on success, abort on error
    def __enter__(self) -> "FileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if self.is_open:
                self.close()
        else:
            self.abort()
