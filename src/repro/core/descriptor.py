"""NameRing file descriptors and the descriptor cache (paper §4.5).

Inside an H2Middleware, "each NameRing corresponds to a unique File
Descriptor" that coordinates its submission, updating and
synchronization; descriptors live in the File Descriptor Cache.  Here
the descriptor holds the middleware's *local version* of the ring (the
not-necessarily-consistent per-node view that §3.3.2's coordination
step reconciles), its pending patch chain, and dirty/version state.

The cache is a bounded LRU; evicting a descriptor with pending patches
would lose updates, so eviction skips dirty descriptors (the background
merger flushes them, after which they become evictable).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..simcloud.clock import Timestamp
from .formatter import ShardManifest
from .namering import NameRing
from .namespace import Namespace
from .patch import PatchChain, PatchGroup


@dataclass
class FileDescriptor:
    """Per-ring state on one middleware node."""

    ns: Namespace
    ring: NameRing = field(default_factory=NameRing.empty)
    chain: PatchChain = None  # type: ignore[assignment]
    loaded: bool = False  # ring reflects a store read at least once
    merged_version: Timestamp = Timestamp.ZERO  # last version written back
    stale: bool = False  # served degraded: store unreachable on last load
    group: PatchGroup | None = None  # open group-commit window, if any
    #: names confirmed absent by a store revalidation (negative cache).
    #: Advisory only -- any write or absorbed remote state discards the
    #: affected entries, and degraded (stale) loads never populate it.
    negative: set[str] = field(default_factory=set)
    #: the shard manifest last read from (or written to) the store, or
    #: None while the stored layout is monolithic/unknown.
    layout: ShardManifest | None = None
    #: names whose cached ring entry may be ahead of the store -- the
    #: sharded write-back's dirty-shard set.  Populated by gossip
    #: absorbs and anti-entropy pulls (patch contents arrive as
    #: ``extra`` instead); cleared per-name once written back.
    dirty_names: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.chain is None:
            self.chain = PatchChain(target_ns=self.ns)

    @property
    def dirty(self) -> bool:
        """True while patches are submitted but not yet merged+written.

        An open group-commit window counts: its payload has been acked
        to the client but is not yet even a patch object, so the
        descriptor must stay pinned in the cache and visible to the
        merger until the group is flushed.
        """
        return bool(self.chain) or self.group is not None

    @property
    def local_version(self) -> Timestamp:
        return self.ring.version

    def view(self) -> NameRing:
        """The node's *effective* local version: ring ⊔ pending chain.

        §3.3.2 gives each node "its local (but not necessarily
        consistent) version"; a node must see its own submitted-but-
        unmerged patches, so reads overlay the chain on the ring.
        """
        effective = self.ring
        if self.chain:
            effective = effective.merge(self.chain.fold())
        if self.group is not None:
            effective = effective.merge(self.group.payload)
        return effective


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FileDescriptorCache:
    """Bounded LRU of :class:`FileDescriptor`, dirty entries pinned."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, FileDescriptor] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ns: Namespace) -> bool:
        return ns.uuid in self._entries

    def lookup(self, ns: Namespace) -> FileDescriptor | None:
        """Cache probe; None on miss (caller loads from the store)."""
        fd = self._entries.get(ns.uuid)
        if fd is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(ns.uuid)
        self.stats.hits += 1
        return fd

    def peek(self, ns: Namespace) -> FileDescriptor | None:
        """Side-effect-free probe: no stats, no LRU promotion.

        For interrogations that are not client traffic -- the gossip
        digest comparison asks "do I already have this exact ring?"
        without that question counting as a cache hit or keeping the
        entry warm.
        """
        return self._entries.get(ns.uuid)

    def get_or_create(self, ns: Namespace) -> FileDescriptor:
        """The descriptor for ``ns``, creating an unloaded one on miss."""
        fd = self.lookup(ns)
        if fd is None:
            fd = FileDescriptor(ns=ns)
            self.insert(fd)
        return fd

    def insert(self, fd: FileDescriptor) -> None:
        self._entries[fd.ns.uuid] = fd
        self._entries.move_to_end(fd.ns.uuid)
        self._evict_if_needed()

    def invalidate(self, ns: Namespace) -> None:
        """Drop a (clean) descriptor; dirty ones must be flushed first."""
        fd = self._entries.get(ns.uuid)
        if fd is not None and not fd.dirty:
            del self._entries[ns.uuid]

    def purge(self, ns: Namespace) -> bool:
        """Drop a descriptor even if dirty; True if one was present.

        For namespaces that ceased to exist (account teardown): pending
        patches target a ring that will never be merged again, so
        keeping the descriptor pinned would leak it forever.
        """
        return self._entries.pop(ns.uuid, None) is not None

    def drop_clean(self) -> int:
        """Evict every clean descriptor (the benchmarks' cold-cache knob)."""
        clean = [uuid for uuid, fd in self._entries.items() if not fd.dirty]
        for uuid in clean:
            del self._entries[uuid]
        self.stats.evictions += len(clean)
        return len(clean)

    def dirty_descriptors(self) -> list[FileDescriptor]:
        """Everything with a pending patch chain (merger work list)."""
        return [fd for fd in self._entries.values() if fd.dirty]

    def descriptors(self) -> list[FileDescriptor]:
        return list(self._entries.values())

    def _evict_if_needed(self) -> None:
        if len(self._entries) <= self.capacity:
            return
        # Evict least-recently-used *clean* descriptors only.
        for uuid in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            if not self._entries[uuid].dirty:
                del self._entries[uuid]
                self.stats.evictions += 1
