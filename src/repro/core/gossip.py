"""Gossip flooding between H2Middlewares (paper §3.3.2 Phase 2 step 2).

After a node merges patches into its local NameRing version, the other
middleware nodes must learn about it so "each node can eventually have
the same NameRing views".  The paper's protocol:

* each gossip message carries tuples ``(N_i, H_j, t_k)`` -- NameRing
  ``N_i``'s local version in node ``H_j`` was updated at ``t_k``;
* on receipt, a node fetches the updated version, merges it into its
  local version, and forwards the rumor;
* **loopback avoidance**: forwarding aborts when the local timestamp is
  already >= the rumor's -- the local version is at least as new.

The :class:`GossipNetwork` here is a deterministic, round-pumped
message fabric: rumors are queued, :meth:`pump` delivers one round,
:meth:`run_until_quiet` drives the system to convergence.  Message loss
is injectable; anti-entropy (periodic full-state sync between random
pairs) backstops convergence under loss, mirroring how epidemic
protocols [Demers et al. 1987] pair rumor mongering with anti-entropy.

Sharded rings ride through unchanged rumors: a receiver absorbs the
announcer's in-memory ring, records which names changed
(``NameRing.merge_changes``), and its write-back touches only the
shards those names hash into -- the rumor itself never grows with
directory size, and anti-entropy digests compare per-shard ``(version,
crc)`` pairs via the stored manifest instead of whole-ring bytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..obs.trace import TraceContext
from ..simcloud.clock import Timestamp
from ..simcloud.failures import MessageLoss
from .namespace import Namespace


@dataclass(frozen=True)
class Rumor:
    """(N_i, H_j, t_k): ring ``ns`` was updated on node ``origin`` at ``ts``.

    ``invalidate=True`` turns the rumor into a cache-invalidation
    broadcast: the namespace ceased to exist (account teardown), so
    receivers drop their descriptor instead of fetching-and-merging.

    ``trace`` (in-memory only, excluded from equality) carries the
    announcing span's context so gossip deliveries on *peer* nodes can
    join the originating operation's span tree.

    ``epoch`` is the storage cluster's membership epoch as seen by the
    announcer (0 when the deployment has no membership controller).
    Receivers compare it against their own observed epoch, so a ring
    change travels with normal gossip traffic and every middleware
    drops placement-derived hints promptly (see
    ``H2Middleware.observe_epoch``).
    """

    ns: Namespace
    origin: int
    ts: Timestamp
    invalidate: bool = False
    trace: TraceContext | None = field(default=None, compare=False, repr=False)
    epoch: int = 0


class GossipNetwork:
    """The rumor fabric connecting every H2Middleware in a deployment."""

    def __init__(
        self,
        fanout: int = 2,
        loss: MessageLoss | None = None,
        coalesce: bool = False,
    ):
        if fanout < 1:
            raise ValueError("gossip fanout must be >= 1")
        self.fanout = fanout
        self.loss = loss or MessageLoss(0.0)
        self.coalesce = coalesce
        # Link-level partitions (set by the deployment from the
        # cluster's PartitionPlan): rumors and anti-entropy pulls are
        # suppressed on severed middleware<->middleware links.
        self.partitions = None
        self._members: dict[int, object] = {}  # node_id -> middleware
        self._queue: deque[tuple[int, Rumor]] = deque()  # (dst, rumor)
        self.rumors_sent = 0
        self.rumors_delivered = 0
        self.rumors_coalesced = 0
        self.rounds = 0
        self.single_deliveries = 0
        self.anti_entropy_rounds = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(self, middleware) -> None:
        if middleware.node_id in self._members:
            raise ValueError(f"node {middleware.node_id} already joined")
        self._members[middleware.node_id] = middleware

    @property
    def members(self) -> list:
        return [self._members[nid] for nid in sorted(self._members)]

    def peer(self, node_id: int):
        return self._members[node_id]

    def peers_of(self, node_id: int) -> list[int]:
        return [nid for nid in sorted(self._members) if nid != node_id]

    # ------------------------------------------------------------------
    # rumor transport
    # ------------------------------------------------------------------
    def announce(self, origin_id: int, rumor: Rumor) -> None:
        """Seed a rumor from its origin to ``fanout`` peers."""
        self._send_from(origin_id, rumor)

    def _link_ok(self, src: int, dst: int) -> bool:
        """Is the directed gossip link ``src -> dst`` unsevered?"""
        if self.partitions is None:
            return True
        from ..simcloud.failures import mw_endpoint

        return self.partitions.reachable(mw_endpoint(src), mw_endpoint(dst))

    def _send_from(self, sender_id: int, rumor: Rumor) -> None:
        peers = self.peers_of(sender_id)
        # Deterministic fanout selection: rotate by sender so load spreads
        # but runs stay reproducible.
        if not peers:
            return
        start = sender_id % len(peers)
        targets = [peers[(start + k) % len(peers)] for k in range(min(self.fanout, len(peers)))]
        for dst in targets:
            # The partition check runs before coalescing and before the
            # loss draw, so an armed-but-idle partition plan consumes
            # nothing from the message-loss RNG stream (digest safety).
            if not self._link_ok(sender_id, dst):
                if self.partitions is not None:
                    self.partitions.blocked_rumors += 1
                continue
            if self.coalesce and self._coalesce_into_queue(dst, rumor):
                continue
            self.rumors_sent += 1
            if self.loss.should_drop(sender_id, dst):
                continue
            self._queue.append((dst, rumor))

    def _coalesce_into_queue(self, dst: int, rumor: Rumor) -> bool:
        """Fold ``rumor`` into an undelivered same-ring message, if any.

        Two rumors about the same ring from the same origin queued for
        the same destination are redundant: the receiver fetches the
        origin's *current* version either way, so only the newest
        timestamp matters.  Supersede (or drop) instead of queueing a
        duplicate -- the coalesced message was never sent, so it is not
        counted in ``rumors_sent`` and never offered to message loss
        (coalescing happens at the sender, before the wire).
        Invalidation broadcasts are never coalesced: they carry a
        side effect per delivery, not a version to fetch.
        """
        if rumor.invalidate:
            return False
        for i, (queued_dst, queued) in enumerate(self._queue):
            if (
                queued_dst == dst
                and not queued.invalidate
                and queued.ns == rumor.ns
                and queued.origin == rumor.origin
            ):
                if rumor.ts > queued.ts:
                    self._queue[i] = (dst, rumor)
                self.rumors_coalesced += 1
                return True
        return False

    def pump(self) -> int:
        """Deliver one round: everything queued right now, not reflooding.

        Receivers may enqueue forwards; those wait for the next round.
        Returns the number of rumors delivered this round.
        """
        batch = len(self._queue)
        for _ in range(batch):
            dst, rumor = self._queue.popleft()
            middleware = self._members.get(dst)
            if middleware is None:
                continue
            self.rumors_delivered += 1
            forward = middleware.on_gossip(rumor)
            if forward:
                self._send_from(dst, rumor)
        self.rounds += 1
        return batch

    def pump_one(self) -> bool:
        """Deliver exactly one queued rumor; False if none were in flight.

        The finest-grained delivery step: the deterministic-simulation
        explorer uses it to interleave a *single* rumor arrival between
        client operations, exercising orderings a whole-round pump can
        never produce.  Forwards enqueued by the receiver wait in line
        like any other rumor.
        """
        if not self._queue:
            return False
        dst, rumor = self._queue.popleft()
        middleware = self._members.get(dst)
        if middleware is None:
            return True
        self.rumors_delivered += 1
        self.single_deliveries += 1
        if middleware.on_gossip(rumor):
            self._send_from(dst, rumor)
        return True

    def run_until_quiet(self, max_rounds: int = 1000) -> int:
        """Pump until no rumors are in flight; returns rounds used."""
        for used in range(max_rounds):
            if not self._queue:
                return used
            self.pump()
        raise RuntimeError("gossip failed to quiesce (rumor storm)")

    @property
    def in_flight(self) -> int:
        return len(self._queue)

    def quiet_for(self, ns: Namespace) -> bool:
        """No queued rumor references ``ns`` (compaction safety check)."""
        return all(rumor.ns != ns for _, rumor in self._queue)

    # ------------------------------------------------------------------
    # anti-entropy backstop
    # ------------------------------------------------------------------
    def anti_entropy_round(self) -> int:
        """Pairwise full-state sync: every node pulls from its successor.

        Guarantees convergence even when rumor messages were lost.
        Returns the number of rings refreshed.
        """
        node_ids = sorted(self._members)
        self.anti_entropy_rounds += 1
        refreshed = 0
        for i, nid in enumerate(node_ids):
            puller = self._members[nid]
            source_id = node_ids[(i + 1) % len(node_ids)]
            source = self._members[source_id]
            if source is puller:
                continue
            # A pull needs both directions: the request out and the
            # state back.  Either severed, the pair stays diverged
            # until the partition heals.
            if not (
                self._link_ok(nid, source_id) and self._link_ok(source_id, nid)
            ):
                continue
            refreshed += puller.pull_state_from(source)
        return refreshed

    def converge(self, max_rounds: int = 1000) -> None:
        """Drive the whole deployment to a fixed point.

        Rumor rounds first; then anti-entropy sweeps until no ring
        changes anywhere (covers rumors dropped by message loss).
        """
        self.run_until_quiet(max_rounds=max_rounds)
        for _ in range(max_rounds):
            changed = self.anti_entropy_round()
            self.run_until_quiet(max_rounds=max_rounds)
            if changed == 0:
                return
        raise RuntimeError("anti-entropy failed to reach a fixed point")
