"""Operation traces: replayable user manipulations (paper §5.1).

"The users' manipulations cover most of the POSIX-like file and
directory operations"; the paper replays the collected workloads
against H2Cloud, OpenStack Swift, and Dropbox.  This module generates
seeded traces over a synthetic tree -- always *valid* sequences,
because the generator tracks the evolving tree through the dict oracle
-- and replays them against any filesystem, timing each operation class
separately (the per-op breakdown the figures report).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..obs.metrics import percentile_of
from ..simcloud.sparse import payload_of
from ..testing.model import ModelFS
from .fstree import SyntheticTree
from .sizes import SizeModel

DEFAULT_MIX = {
    "read": 0.38,
    "write": 0.22,
    "list": 0.16,
    "stat": 0.10,
    "mkdir": 0.05,
    "delete": 0.04,
    "move": 0.025,
    "copy": 0.015,
    "rename": 0.007,
    "rmdir": 0.003,
}

#: The operation vocabulary a mix may weight -- exactly the kinds the
#: replayer dispatches.  Anything else is a typo, not a workload.
KNOWN_OPS = frozenset(DEFAULT_MIX)

#: How far a mix's weights may drift from summing to 1.0 before the
#: generator refuses it (fp noise is fine; garbage is not).
MIX_SUM_TOLERANCE = 0.01


def validate_mix(mix: dict[str, float]) -> dict[str, float]:
    """Check an op-mix dict and return it exactly normalised.

    Rejects (``ValueError``) empty mixes, unknown op names,
    non-positive weights, and weight sums that are not ≈ 1.0 --
    silently renormalising a garbage mix would hide the typo that
    produced it.  The returned copy sums to exactly 1.0.
    """
    if not mix:
        raise ValueError("op mix must not be empty")
    unknown = sorted(set(mix) - KNOWN_OPS)
    if unknown:
        raise ValueError(
            f"unknown op name(s) in mix: {unknown}; "
            f"known ops: {sorted(KNOWN_OPS)}"
        )
    for kind, weight in mix.items():
        if not isinstance(weight, (int, float)) or weight <= 0:
            raise ValueError(
                f"mix weight for {kind!r} must be a positive number, "
                f"got {weight!r}"
            )
    total = sum(mix.values())
    if abs(total - 1.0) > MIX_SUM_TOLERANCE:
        raise ValueError(
            f"mix weights must sum to ~1.0 (+/-{MIX_SUM_TOLERANCE}), "
            f"got {total:.4f}"
        )
    return {k: v / total for k, v in mix.items()}


@dataclass(frozen=True)
class Op:
    """One trace step."""

    kind: str
    path: str
    dest: str | None = None
    size: int = 0


@dataclass
class TraceStats:
    """Per-op-kind simulated timings collected by the replayer."""

    timings_us: dict[str, list[int]] = field(default_factory=dict)

    def record(self, kind: str, cost_us: int) -> None:
        self.timings_us.setdefault(kind, []).append(cost_us)

    def mean_us(self, kind: str) -> float:
        values = self.timings_us.get(kind, [])
        return sum(values) / len(values) if values else 0.0

    def count(self, kind: str) -> int:
        return len(self.timings_us.get(kind, []))

    def percentile_us(self, kind: str, q: float) -> float:
        """Interpolated quantile of one op class's timings.

        Shares :func:`repro.obs.metrics.percentile_of` with the metrics
        registry's histograms, so a trace replay and an SLO report card
        quote the same p50/p99 for the same observations.
        """
        return percentile_of(sorted(self.timings_us.get(kind, [])), q)

    def p50_us(self, kind: str) -> float:
        return self.percentile_us(kind, 0.50)

    def p99_us(self, kind: str) -> float:
        return self.percentile_us(kind, 0.99)

    @property
    def total_ops(self) -> int:
        return sum(len(v) for v in self.timings_us.values())


class TraceGenerator:
    """Seeded generator of valid operation sequences over a tree."""

    def __init__(
        self,
        seed: int = 0,
        mix: dict[str, float] | None = None,
        size_model: SizeModel | None = None,
    ):
        self._rng = random.Random(seed)
        self._mix = validate_mix(dict(mix or DEFAULT_MIX))
        self._sizes = size_model or SizeModel.paper_mixture(scale=0.001)

    def generate(self, tree: SyntheticTree, n_ops: int) -> list[Op]:
        """A valid trace over (a model replica of) ``tree``."""
        model = ModelFS()
        dirs = ["/"]
        for d in tree.dirs:
            model.makedirs(d)
            dirs.append(d)
        files = []
        for f in tree.files:
            model.write(f.path, b"")
            files.append(f.path)
        serial = 0
        ops: list[Op] = []
        while len(ops) < n_ops:
            kind = self._pick_kind()
            op = self._make_op(kind, model, dirs, files, serial)
            if op is None:
                continue
            serial += 1
            ops.append(op)
        return ops

    def _pick_kind(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for kind, weight in self._mix.items():
            cumulative += weight
            if roll <= cumulative:
                return kind
        return "read"

    def _make_op(self, kind, model, dirs, files, serial) -> Op | None:
        rng = self._rng
        if kind in ("read", "stat", "delete") and not files:
            return None
        if kind == "read" or kind == "stat":
            return Op(kind, rng.choice(files))
        if kind == "write":
            parent = rng.choice(dirs)
            if rng.random() < 0.3 and files:  # overwrite
                path = rng.choice(files)
            else:
                path = (parent.rstrip("/") or "") + f"/trace{serial:06d}"
                if model.exists(path):
                    return None
                model.write(path, b"")
                files.append(path)
            return Op(kind, path, size=self._sizes.sample(rng))
        if kind == "list":
            return Op(kind, rng.choice(dirs))
        if kind == "mkdir":
            parent = rng.choice(dirs)
            path = (parent.rstrip("/") or "") + f"/tdir{serial:06d}"
            if model.exists(path):
                return None
            model.mkdir(path)
            dirs.append(path)
            return Op(kind, path)
        if kind == "delete":
            path = rng.choice(files)
            model.delete(path)
            files.remove(path)
            return Op(kind, path)
        if kind in ("move", "rename", "copy"):
            if not files:
                return None
            src = rng.choice(files)
            if kind == "rename":
                dest = src.rsplit("/", 1)[0] + f"/renamed{serial:06d}"
            else:
                parent = rng.choice(dirs)
                dest = (parent.rstrip("/") or "") + f"/{kind}{serial:06d}"
            if model.exists(dest) or dest == src:
                return None
            if kind == "copy":
                model.copy(src, dest)
                files.append(dest)
            else:
                model.move(src, dest)
                files.remove(src)
                files.append(dest)
            return Op(kind, src, dest=dest)
        if kind == "rmdir":
            candidates = [d for d in dirs if d != "/" and not model.listdir(d)]
            if not candidates:
                return None
            path = rng.choice(candidates)
            model.rmdir(path)
            dirs.remove(path)
            return Op(kind, path)
        return None  # pragma: no cover - exhaustive mix


def replay(fs, ops: list[Op], sparse: bool = True) -> TraceStats:
    """Run a trace against a filesystem, timing every operation."""
    stats = TraceStats()
    clock = fs.clock
    for op in ops:
        if op.kind in ("read",):
            _, cost = clock.measure(lambda: fs.read(op.path))
        elif op.kind == "stat":
            _, cost = clock.measure(lambda: fs.stat(op.path))
        elif op.kind == "write":
            payload = payload_of(op.size, tag=op.path, sparse=sparse)
            _, cost = clock.measure(lambda: fs.write(op.path, payload))
        elif op.kind == "list":
            _, cost = clock.measure(lambda: fs.listdir(op.path, detailed=True))
        elif op.kind == "mkdir":
            _, cost = clock.measure(lambda: fs.mkdir(op.path))
        elif op.kind == "delete":
            _, cost = clock.measure(lambda: fs.delete(op.path))
        elif op.kind in ("move", "rename"):
            _, cost = clock.measure(lambda: fs.move(op.path, op.dest))
        elif op.kind == "copy":
            _, cost = clock.measure(lambda: fs.copy(op.path, op.dest))
        elif op.kind == "rmdir":
            _, cost = clock.measure(lambda: fs.rmdir(op.path))
        else:  # pragma: no cover - trace generator is exhaustive
            raise ValueError(f"unknown op kind {op.kind!r}")
        stats.record(op.kind, cost)
    return stats
