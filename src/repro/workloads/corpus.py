"""The user corpus: ~150 light/heavy filesystems (paper §5.1).

"Among these invited users, some users' filesystems are light ...
while the filesystems of the rest of users are heavy."  The corpus
builder produces the seeded population; :func:`populate_corpus` loads
it into a filesystem per account (or one shared account under per-user
top directories, which is what the storage-overhead census of
Figs 14-15 uses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .fstree import SyntheticTree, TreeSpec, generate, heavy_user, light_user


@dataclass(frozen=True)
class UserProfile:
    """One invited user: an account name and the shape of their data."""

    account: str
    kind: str  # "light" | "heavy"
    spec: TreeSpec

    def tree(self) -> SyntheticTree:
        return generate(self.spec)


def build_corpus(
    n_users: int = 150,
    heavy_fraction: float = 0.25,
    seed: int = 7,
    heavy_scale: float = 1.0,
) -> list[UserProfile]:
    """The paper's population: mostly light users, a heavy minority."""
    if not 0.0 <= heavy_fraction <= 1.0:
        raise ValueError("heavy_fraction must be in [0, 1]")
    rng = random.Random(seed)
    users: list[UserProfile] = []
    for i in range(n_users):
        heavy = rng.random() < heavy_fraction
        if heavy:
            spec = heavy_user(seed=seed * 1000 + i, scale=heavy_scale)
        else:
            spec = light_user(seed=seed * 1000 + i)
        users.append(
            UserProfile(
                account=f"user{i:03d}",
                kind="heavy" if heavy else "light",
                spec=spec,
            )
        )
    return users


def corpus_stats(users: list[UserProfile]) -> dict[str, float]:
    """Aggregate shape numbers for reporting / sanity tests."""
    trees = [u.tree() for u in users]
    files = [len(t.files) for t in trees]
    depths = [t.max_depth for t in trees]
    return {
        "users": len(users),
        "heavy_users": sum(1 for u in users if u.kind == "heavy"),
        "total_files": sum(files),
        "total_dirs": sum(len(t.dirs) for t in trees),
        "max_files_one_user": max(files) if files else 0,
        "max_depth": max(depths) if depths else 0,
        "total_bytes": sum(t.total_bytes for t in trees),
    }


def populate_corpus(make_fs, users: list[UserProfile], sparse: bool = True):
    """Load every user into their own filesystem instance.

    ``make_fs(account)`` builds the per-account filesystem (all
    instances typically share one cluster so the census sees the whole
    deployment).  Returns {account: fs}.
    """
    from .fstree import populate

    out = {}
    for user in users:
        fs = make_fs(user.account)
        populate(fs, user.tree(), sparse=sparse)
        out[user.account] = fs
    return out
