"""Popularity-skewed (Zipfian) access workloads.

Real cloud-storage traffic is heavily skewed: a handful of hot
directories absorb most lookups (the paper's motivation for the File
Descriptor Cache and for avoiding per-directory locks on "frequently
accessed directories", §3.3.1).  This module provides a dependency-free
Zipf sampler over a synthetic tree's files and a generator of pure
lookup traces, used by the cache-sizing ablation.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from .fstree import SyntheticTree


@dataclass(frozen=True)
class ZipfSampler:
    """Draws indices 0..n-1 with P(i) proportional to 1/(i+1)^alpha."""

    n: int
    alpha: float = 1.1
    _cdf: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.alpha <= 0:
            raise ValueError("alpha must be > 0")
        weights = [1.0 / (i + 1) ** self.alpha for i in range(self.n)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for w in weights:
            running += w / total
            cumulative.append(running)
        object.__setattr__(self, "_cdf", tuple(cumulative))

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        return [self.sample(rng) for _ in range(count)]


def hot_lookup_trace(
    tree: SyntheticTree,
    n_ops: int,
    alpha: float = 1.1,
    seed: int = 0,
) -> list[str]:
    """A pure-lookup trace over the tree's files, Zipf-popular.

    Files are ranked by a seeded shuffle (so "hotness" is not
    correlated with generation order), then sampled Zipfian: the
    resulting path list is what the cache-sizing ablation replays.
    """
    if not tree.files:
        raise ValueError("tree has no files to look up")
    rng = random.Random(seed)
    paths = [f.path for f in tree.files]
    rng.shuffle(paths)
    sampler = ZipfSampler(n=len(paths), alpha=alpha)
    return [paths[sampler.sample(rng)] for _ in range(n_ops)]


def skew_of(trace: list[str]) -> float:
    """Fraction of accesses landing on the top-10% most accessed paths."""
    counts: dict[str, int] = {}
    for path in trace:
        counts[path] = counts.get(path, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    top = max(1, len(ranked) // 10)
    return sum(ranked[:top]) / len(trace)


# ----------------------------------------------------------------------
# Huge-directory workload (the sharded-NameRing stress shape)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HugeDirSpec:
    """One giant flat directory plus a skewed op mix over it.

    The shape Fig 10 sweeps (LIST against directories of growing m) and
    the shape that motivates sharded NameRings: millions of siblings
    under a single parent, accessed Zipf-hot, with a trickle of churn.
    Fractions must sum to <= 1; the remainder becomes lookups.
    """

    children: int = 10_000
    ops: int = 1_000
    insert_fraction: float = 0.10
    delete_fraction: float = 0.05
    list_fraction: float = 0.05
    page_size: int = 1_000
    alpha: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.children < 1 or self.ops < 0:
            raise ValueError("children must be >= 1 and ops >= 0")
        if self.page_size < 1:
            raise ValueError("page_size must be >= 1")
        mutating = self.insert_fraction + self.delete_fraction
        if mutating + self.list_fraction > 1.0:
            raise ValueError("op fractions must sum to <= 1")

    def child_name(self, i: int) -> str:
        return f"c{i:07d}"


def huge_directory_ops(spec: HugeDirSpec) -> list[tuple[str, str]]:
    """The seeded op stream over one giant directory.

    Returns ``(op, operand)`` pairs: ``("lookup", name)`` /
    ``("insert", name)`` / ``("delete", name)`` /
    ``("list_page", marker)``.  Lookups and deletes are Zipf-hot over a
    seeded shuffle of the initial population (hotness uncorrelated with
    name order, same trick as :func:`hot_lookup_trace`); inserts mint
    fresh names; list pages start at a random existing child so paging
    pressure spreads across shards.
    """
    rng = random.Random(spec.seed)
    names = [spec.child_name(i) for i in range(spec.children)]
    ranked = list(names)
    rng.shuffle(ranked)
    sampler = ZipfSampler(n=len(ranked), alpha=spec.alpha)
    ops: list[tuple[str, str]] = []
    minted = 0
    for _ in range(spec.ops):
        roll = rng.random()
        if roll < spec.insert_fraction:
            ops.append(("insert", f"new{minted:07d}"))
            minted += 1
        elif roll < spec.insert_fraction + spec.delete_fraction:
            ops.append(("delete", ranked[sampler.sample(rng)]))
        elif roll < (
            spec.insert_fraction + spec.delete_fraction + spec.list_fraction
        ):
            ops.append(("list_page", ranked[sampler.sample(rng)]))
        else:
            ops.append(("lookup", ranked[sampler.sample(rng)]))
    return ops
