"""Popularity-skewed (Zipfian) access workloads.

Real cloud-storage traffic is heavily skewed: a handful of hot
directories absorb most lookups (the paper's motivation for the File
Descriptor Cache and for avoiding per-directory locks on "frequently
accessed directories", §3.3.1).  This module provides a dependency-free
Zipf sampler over a synthetic tree's files and a generator of pure
lookup traces, used by the cache-sizing ablation.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from .fstree import SyntheticTree


@dataclass(frozen=True)
class ZipfSampler:
    """Draws indices 0..n-1 with P(i) proportional to 1/(i+1)^alpha."""

    n: int
    alpha: float = 1.1
    _cdf: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.alpha <= 0:
            raise ValueError("alpha must be > 0")
        weights = [1.0 / (i + 1) ** self.alpha for i in range(self.n)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for w in weights:
            running += w / total
            cumulative.append(running)
        object.__setattr__(self, "_cdf", tuple(cumulative))

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        return [self.sample(rng) for _ in range(count)]


def hot_lookup_trace(
    tree: SyntheticTree,
    n_ops: int,
    alpha: float = 1.1,
    seed: int = 0,
) -> list[str]:
    """A pure-lookup trace over the tree's files, Zipf-popular.

    Files are ranked by a seeded shuffle (so "hotness" is not
    correlated with generation order), then sampled Zipfian: the
    resulting path list is what the cache-sizing ablation replays.
    """
    if not tree.files:
        raise ValueError("tree has no files to look up")
    rng = random.Random(seed)
    paths = [f.path for f in tree.files]
    rng.shuffle(paths)
    sampler = ZipfSampler(n=len(paths), alpha=alpha)
    return [paths[sampler.sample(rng)] for _ in range(n_ops)]


def skew_of(trace: list[str]) -> float:
    """Fraction of accesses landing on the top-10% most accessed paths."""
    counts: dict[str, int] = {}
    for path in trace:
        counts[path] = counts.get(path, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    top = max(1, len(ranked) // 10)
    return sum(ranked[:top]) / len(trace)
