"""File-size model matching the paper's workload description (§5.1).

"The file type also is diversified, including videos and database
backups with the file size of gigabytes (GB), text and configuration
files with size less than one kilobyte (KB), and other file types
(e.g., documents and figures) with a medium file size" -- and Fig 15
puts the average file object near 1 MB.  :class:`SizeModel` is a
seeded three-component mixture reproducing that shape, with a global
``scale`` so memory-constrained runs can shrink everything uniformly
without changing relative proportions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class SizeComponent:
    """One mixture component: lognormal around a median size."""

    weight: float
    median: int
    sigma: float  # lognormal shape; ~0.8 gives a realistic long tail
    cap: int

    def sample(self, rng: random.Random, scale: float) -> int:
        mu = math.log(max(1, self.median * scale))
        size = int(rng.lognormvariate(mu, self.sigma) + 0.5)
        return max(1, min(size, int(self.cap * scale)))


@dataclass(frozen=True)
class SizeModel:
    """A seeded mixture of size components."""

    components: tuple[SizeComponent, ...]
    scale: float = 1.0

    def sample(self, rng: random.Random) -> int:
        pick = rng.random()
        cumulative = 0.0
        for component in self.components:
            cumulative += component.weight
            if pick <= cumulative:
                return component.sample(rng, self.scale)
        return self.components[-1].sample(rng, self.scale)

    def sample_many(self, rng: random.Random, count: int) -> list[int]:
        return [self.sample(rng) for _ in range(count)]

    # ------------------------------------------------------------------
    @classmethod
    def paper_mixture(cls, scale: float = 1.0) -> "SizeModel":
        """Texts <1 KB, documents/figures around hundreds of KB, a thin
        tail of multi-GB videos/backups; mean lands near 1 MB."""
        return cls(
            components=(
                SizeComponent(weight=0.40, median=600, sigma=0.9, cap=4 * KB),
                SizeComponent(weight=0.58, median=280 * KB, sigma=1.1, cap=50 * MB),
                SizeComponent(weight=0.02, median=18 * MB, sigma=1.0, cap=2 * GB),
            ),
            scale=scale,
        )

    @classmethod
    def uniform(cls, size: int) -> "SizeModel":
        """Every file exactly ``size`` bytes (the controlled sweeps)."""
        return cls(
            components=(SizeComponent(weight=1.0, median=size, sigma=0.0, cap=size),),
            scale=1.0,
        )

    def mean_estimate(self, seed: int = 1, samples: int = 4000) -> float:
        rng = random.Random(seed)
        drawn = self.sample_many(rng, samples)
        return sum(drawn) / len(drawn)
