"""`repro.workloads` -- the paper's workloads, reproduced synthetically.

Seeded generators for user filesystem trees (light/heavy, §5.1), the
file-size mixture (KB configs to GB videos, ~1 MB mean), operation
traces covering the POSIX-like op mix, the ~150-user corpus used for
the storage-overhead census of Figures 14-15, and the multi-tenant
scenario suite (diurnal/burst arrivals, Zipf tenant mix, sync storms)
that scales the op mix to hundreds of thousands of accounts.
"""

from .corpus import UserProfile, build_corpus, corpus_stats, populate_corpus
from .fstree import (
    FileSpec,
    SyntheticTree,
    TreeSpec,
    chain_directories,
    flat_directory,
    generate,
    heavy_user,
    light_user,
    populate,
)
from .hotspots import (
    HugeDirSpec,
    ZipfSampler,
    hot_lookup_trace,
    huge_directory_ops,
    skew_of,
)
from .scenarios import (
    SCENARIOS,
    TIERS,
    ArrivalProcess,
    BurstModel,
    DiurnalCurve,
    ScaleTier,
    ScenarioExplorer,
    ScenarioSpec,
    TenantMix,
    build_scenario,
    scenario_env,
)
from .sizes import GB, KB, MB, SizeComponent, SizeModel
from .traces import (
    DEFAULT_MIX,
    KNOWN_OPS,
    Op,
    TraceGenerator,
    TraceStats,
    replay,
    validate_mix,
)

__all__ = [
    "ArrivalProcess",
    "BurstModel",
    "DEFAULT_MIX",
    "DiurnalCurve",
    "KNOWN_OPS",
    "SCENARIOS",
    "ScaleTier",
    "ScenarioExplorer",
    "ScenarioSpec",
    "TIERS",
    "TenantMix",
    "build_scenario",
    "scenario_env",
    "validate_mix",
    "FileSpec",
    "GB",
    "HugeDirSpec",
    "KB",
    "MB",
    "Op",
    "SizeComponent",
    "SizeModel",
    "SyntheticTree",
    "TraceGenerator",
    "TraceStats",
    "TreeSpec",
    "UserProfile",
    "ZipfSampler",
    "build_corpus",
    "chain_directories",
    "corpus_stats",
    "flat_directory",
    "generate",
    "heavy_user",
    "hot_lookup_trace",
    "huge_directory_ops",
    "light_user",
    "populate",
    "populate_corpus",
    "replay",
    "skew_of",
]
