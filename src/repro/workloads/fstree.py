"""Synthetic filesystem trees matching the paper's user corpus (§5.1).

The paper invited ~150 users: "light" filesystems of several shallow
directories and hundreds of files, "heavy" ones with thousands of
directories in different depths and millions of files; files per
directory range from zero to nearly half a million, depth from zero to
more than 20.  :func:`generate` builds seeded trees with those shape
parameters (scaled down by default so a laptop simulation stays
tractable -- the *distributional* shape, not the absolute count, is
what the experiments need), and :func:`populate` loads a tree into any
filesystem implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..simcloud.sparse import payload_of
from .sizes import SizeModel


@dataclass(frozen=True)
class FileSpec:
    path: str
    size: int


@dataclass(frozen=True)
class TreeSpec:
    """Shape parameters for one synthetic user filesystem."""

    seed: int = 0
    target_files: int = 200
    max_depth: int = 6
    branch_mean: float = 2.0  # subdirectories per directory (geometric)
    files_per_dir_mean: float = 8.0  # geometric mean of files per dir
    empty_dir_fraction: float = 0.08  # paper: "from zero (empty folder)"
    size_model: SizeModel = field(default_factory=SizeModel.paper_mixture)

    def __post_init__(self) -> None:
        if self.target_files < 0 or self.max_depth < 1:
            raise ValueError("bad tree spec")


@dataclass
class SyntheticTree:
    """A generated tree: directory paths plus sized file specs."""

    spec: TreeSpec
    dirs: list[str]
    files: list[FileSpec]

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def depth_histogram(self) -> dict[int, int]:
        histogram: dict[int, int] = {}
        for f in self.files:
            d = f.path.count("/")
            histogram[d] = histogram.get(d, 0) + 1
        return histogram

    def files_per_dir(self) -> dict[str, int]:
        counts = {d: 0 for d in self.dirs}
        counts["/"] = 0
        for f in self.files:
            parent = f.path.rsplit("/", 1)[0] or "/"
            counts[parent] = counts.get(parent, 0) + 1
        return counts

    @property
    def max_depth(self) -> int:
        return max((f.path.count("/") for f in self.files), default=0)


def light_user(seed: int = 0) -> TreeSpec:
    """Several shallow directories, hundreds of files."""
    rng = random.Random(seed + 101)
    return TreeSpec(
        seed=seed,
        target_files=rng.randint(120, 400),
        max_depth=4,
        branch_mean=1.5,
        files_per_dir_mean=12.0,
        size_model=SizeModel.paper_mixture(scale=0.01),
    )


def heavy_user(seed: int = 0, scale: float = 1.0) -> TreeSpec:
    """Thousands of directories, deep paths (paper: depth > 20).

    ``scale`` multiplies the file count; 1.0 keeps the default run at
    a few thousand files (the paper's millions are reached by raising
    it, at proportional memory cost).
    """
    rng = random.Random(seed + 4242)
    return TreeSpec(
        seed=seed,
        target_files=int(rng.randint(2_000, 6_000) * scale),
        max_depth=22,
        branch_mean=2.6,
        files_per_dir_mean=6.0,
        size_model=SizeModel.paper_mixture(scale=0.01),
    )


def generate(spec: TreeSpec) -> SyntheticTree:
    """Deterministically expand a :class:`TreeSpec` into a tree."""
    rng = random.Random(spec.seed)
    dirs: list[str] = []
    files: list[FileSpec] = []
    # Breadth-first expansion until the file budget is spent.
    frontier: list[tuple[str, int]] = [("/", 0)]
    dir_serial = 0
    file_serial = 0
    while frontier and len(files) < spec.target_files:
        # Mixed BFS/DFS expansion: mostly depth-first so deep chains
        # appear early (the paper's corpus reaches depth > 20), with
        # enough breadth-first pops to keep the tree bushy.
        path, depth = frontier.pop(-1 if rng.random() < 0.7 else 0)
        # Subdirectories: geometric around branch_mean, stop at max_depth.
        if depth < spec.max_depth:
            n_subdirs = _geometric(rng, spec.branch_mean)
            if depth == 0:
                n_subdirs = max(n_subdirs, 2)  # roots always branch a bit
            for _ in range(n_subdirs):
                dir_serial += 1
                child = (path.rstrip("/") or "") + f"/dir{dir_serial:05d}"
                dirs.append(child)
                frontier.append((child, depth + 1))
        # Files in this directory.
        if rng.random() < spec.empty_dir_fraction and depth > 0:
            continue
        n_files = _geometric(rng, spec.files_per_dir_mean)
        for _ in range(n_files):
            if len(files) >= spec.target_files:
                break
            file_serial += 1
            fpath = (path.rstrip("/") or "") + f"/file{file_serial:06d}"
            files.append(FileSpec(path=fpath, size=spec.size_model.sample(rng)))
    # If branching petered out before the budget, top up the last dirs.
    anchor_dirs = dirs or ["/"]
    while len(files) < spec.target_files:
        file_serial += 1
        parent = anchor_dirs[file_serial % len(anchor_dirs)]
        fpath = (parent.rstrip("/") or "") + f"/file{file_serial:06d}"
        files.append(FileSpec(path=fpath, size=spec.size_model.sample(rng)))
    return SyntheticTree(spec=spec, dirs=dirs, files=files)


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric draw with the given mean (mean >= 0)."""
    if mean <= 0:
        return 0
    p = 1.0 / (1.0 + mean)
    count = 0
    while rng.random() > p:
        count += 1
        if count > 10_000:  # pragma: no cover - safety bound
            break
    return count


def populate(fs, tree: SyntheticTree, sparse: bool = True) -> None:
    """Load a synthetic tree into any filesystem implementation.

    ``sparse=True`` uses :class:`~repro.simcloud.sparse.SparseData`
    payloads (no memory for file bodies); pass ``False`` for systems
    that slice real bytes (Cumulus, CAS).  Filesystems exposing a bulk
    loader (``write_many``) get one patch per directory instead of one
    per file, keeping large populations linear in wall time.
    """
    for d in tree.dirs:
        fs.mkdir(d)
    if hasattr(fs, "write_many"):
        by_dir: dict[str, list[tuple[str, object]]] = {}
        for f in tree.files:
            parent, _, name = f.path.rpartition("/")
            by_dir.setdefault(parent or "/", []).append(
                (name, payload_of(f.size, tag=f.path, sparse=sparse))
            )
        for parent, items in by_dir.items():
            fs.write_many(parent, items)
        return
    for f in tree.files:
        fs.write(f.path, payload_of(f.size, tag=f.path, sparse=sparse))


def flat_directory(n_files: int, file_size: int = 1 << 20, prefix: str = "/dir") -> SyntheticTree:
    """The controlled sweep workload: one directory, n files of ~1 MB."""
    spec = TreeSpec(
        seed=0,
        target_files=n_files,
        max_depth=1,
        branch_mean=0.0,
        files_per_dir_mean=float(n_files),
        empty_dir_fraction=0.0,
        size_model=SizeModel.uniform(file_size),
    )
    files = [
        FileSpec(path=f"{prefix}/file{i:06d}", size=file_size)
        for i in range(n_files)
    ]
    return SyntheticTree(spec=spec, dirs=[prefix], files=files)


def chain_directories(depth: int, prefix: str = "d") -> list[str]:
    """['/d1', '/d1/d2', ...] -- the Fig 13 depth sweep's scaffolding."""
    paths = []
    current = ""
    for i in range(depth):
        current = f"{current}/{prefix}{i + 1}"
        paths.append(current)
    return paths
