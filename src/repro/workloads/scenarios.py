"""Multi-tenant production scenarios: the million-user proving ground.

The paper validates H2Cloud with figure-shaped microbenches and
replayed single-user manipulations (§5.1); production object-store
traffic is nothing like that -- it is bursty, diurnal, and heavily
skewed across hundreds of thousands of tenants, with a few heavy
accounts owning deep trees and near-half-million-file hotspot
directories.  This module turns that shape into *deterministic
schedules*: a scenario is ``(name, tier, seed)`` and nothing else, so
any run is replayable bit-for-bit, shrinkable with the DST ddmin loop,
and composable with the fault/corruption/membership mixes the DST
explorer already weaves.

Building blocks:

* :class:`ScaleTier` -- how big: tenant population, op budget, hotspot
  directory size, sync-storm fan-out.
* :class:`DiurnalCurve` + :class:`BurstModel` + :class:`ArrivalProcess`
  -- *when* ops arrive: a day-shaped base rate with bounded
  Poisson-burst windows squeezing inter-arrival gaps.
* :class:`TenantMix` -- *who* issues them: Zipf-popular tenants over a
  light/heavy population; the single most popular tenant anchors the
  hotspot directory.
* :class:`ScenarioSpec` + the :data:`SCENARIOS` catalog -- *what* they
  do: a validated op mix (:func:`~repro.workloads.traces.validate_mix`)
  layered with Dropbox-style sync storms (write fan-out, then rename
  into place) and backup-style directory scans.
* :class:`ScenarioExplorer` -- expands a spec into one total-ordered
  :class:`~repro.dst.schedule.Schedule` whose client ops carry tenant
  accounts, ready for the scenario runner in
  :mod:`repro.bench.scale`.

Tenant trees are seeded *lazily*: the population is declared up front
(hundreds of thousands of accounts at the full tier), but only tenants
the arrival process actually activates are materialised in the store --
both the explorer and the runner derive the identical starter tree from
:func:`seed_layout`, so generated ops are always valid on a fault-free
run.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import asdict, dataclass, field, replace

from ..dst.explorer import DstConfig, with_traffic_flags
from ..dst.ops import ClientOp
from ..dst.schedule import Schedule, Step
from .hotspots import ZipfSampler
from .traces import validate_mix

US_PER_SEC = 1_000_000
SIM_DAY_US = 24 * 3600 * US_PER_SEC

#: The heavy anchor tenant's hotspot directory (paper: "files per
#: directory range from zero to nearly half a million").
HOTSPOT_DIR = "/hot"

#: Where sync storms land (one batch directory per storm).
SYNC_DIR = "/sync"

SCENARIO_FORMAT = "h2cloud-scenario-v1"


def hotspot_name(index: int) -> str:
    return f"h{index:06d}"


# ----------------------------------------------------------------------
# scale tiers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScaleTier:
    """How big one scenario run is.

    ``tenants`` is the declared population; only activated tenants are
    materialised.  ``hotspot_files`` sizes the anchor tenant's single
    hot directory; the full tier's 500k reproduces the paper's
    heaviest users (and is exactly the monolithic-NameRing pain point
    ROADMAP item 1 exists to fix -- this suite is its measuring stick).
    """

    name: str
    tenants: int
    ops: int
    heavy_fraction: float
    hotspot_files: int
    storm_fanout: int  # files written (then renamed) per sync storm
    light_files: int  # starter files per light tenant
    heavy_files: int  # starter files per heavy tenant (hotspot aside)
    heavy_depth: int  # depth of a heavy tenant's seeded chain
    list_page: int = 512  # LIST pagination limit at scale

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.ops < 1:
            raise ValueError("tier needs at least one tenant and one op")
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be in [0, 1]")
        if min(self.hotspot_files, self.storm_fanout, self.list_page) < 1:
            raise ValueError("hotspot_files/storm_fanout/list_page must be >= 1")


#: The scale ladder.  ``micro`` keeps unit tests in milliseconds;
#: ``smoke`` is the PR-CI slice (~1k accounts, ~10k ops); ``small`` is
#: a laptop-scale shakeout; ``full`` is the nightly tier with a
#: quarter-million declared accounts and the half-million-file hotspot.
TIERS: dict[str, ScaleTier] = {
    "micro": ScaleTier(
        "micro",
        tenants=24,
        ops=160,
        heavy_fraction=0.15,
        hotspot_files=64,
        storm_fanout=5,
        light_files=4,
        heavy_files=10,
        heavy_depth=6,
        list_page=64,
    ),
    "smoke": ScaleTier(
        "smoke",
        tenants=1_000,
        ops=10_000,
        heavy_fraction=0.10,
        hotspot_files=2_000,
        storm_fanout=16,
        light_files=6,
        heavy_files=24,
        heavy_depth=10,
    ),
    "small": ScaleTier(
        "small",
        tenants=20_000,
        ops=40_000,
        heavy_fraction=0.10,
        hotspot_files=20_000,
        storm_fanout=24,
        light_files=6,
        heavy_files=32,
        heavy_depth=14,
    ),
    "full": ScaleTier(
        "full",
        tenants=250_000,
        ops=150_000,
        heavy_fraction=0.10,
        hotspot_files=500_000,
        storm_fanout=40,
        light_files=6,
        heavy_files=40,
        heavy_depth=22,
    ),
}


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiurnalCurve:
    """A day-shaped rate multiplier: trough at night, peak mid-day.

    ``rate_at`` is a raised cosine over ``period_us`` bounded by
    ``[trough, peak]`` with mean ``(trough + peak) / 2``; the arrival
    process divides inter-arrival gaps by it, so mid-day traffic is
    ``peak / trough`` times denser than the 3am lull.
    """

    trough: float = 0.25
    peak: float = 1.75
    period_us: int = SIM_DAY_US
    phase: float = 0.0  # day-fraction at which the trough sits

    def __post_init__(self) -> None:
        if not 0.0 < self.trough <= self.peak:
            raise ValueError("need 0 < trough <= peak")
        if self.period_us < 1:
            raise ValueError("period_us must be positive")

    def rate_at(self, t_us: int) -> float:
        frac = (t_us % self.period_us) / self.period_us
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * (frac - self.phase)))
        return self.trough + (self.peak - self.trough) * swing


@dataclass(frozen=True)
class BurstModel:
    """Bounded Poisson-burst windows layered on the diurnal base.

    Each inter-arrival gap opens a burst with probability ``rate``;
    inside a burst the next ``min_ops..max_ops`` arrivals have their
    gaps multiplied by ``squeeze`` (<< 1) and stick to the tenant that
    opened the window -- the sync-client shape where one device floods
    its own account.  Windows are hard-bounded by ``max_ops``.
    """

    rate: float = 0.004
    min_ops: int = 10
    max_ops: int = 80
    squeeze: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("burst rate must be a probability")
        if not 1 <= self.min_ops <= self.max_ops:
            raise ValueError("need 1 <= min_ops <= max_ops")
        if not 0.0 < self.squeeze <= 1.0:
            raise ValueError("squeeze must be in (0, 1]")


class ArrivalProcess:
    """Seeded diurnal + burst arrivals: a stream of inter-op gaps."""

    def __init__(
        self,
        rng: random.Random,
        mean_gap_us: float,
        diurnal: DiurnalCurve,
        burst: BurstModel,
    ):
        if mean_gap_us <= 0:
            raise ValueError("mean_gap_us must be positive")
        self._rng = rng
        self._mean_gap_us = mean_gap_us
        self._diurnal = diurnal
        self._burst = burst
        self._burst_left = 0

    @property
    def in_burst(self) -> bool:
        return self._burst_left > 0

    def next_gap(self, now_us: int) -> tuple[int, bool]:
        """(gap_us, burst_opened): the wait before the next arrival.

        ``burst_opened`` is True exactly when this draw opened a new
        burst window -- the caller pins the window to whichever tenant
        it picks next.
        """
        opened = False
        if self._burst_left > 0:
            self._burst_left -= 1
            squeeze = self._burst.squeeze
        elif self._burst.rate and self._rng.random() < self._burst.rate:
            self._burst_left = self._rng.randint(
                self._burst.min_ops, self._burst.max_ops
            ) - 1
            squeeze = self._burst.squeeze
            opened = True
        else:
            squeeze = 1.0
        rate = self._diurnal.rate_at(now_us)
        gap = self._rng.expovariate(1.0) * self._mean_gap_us * squeeze / rate
        return max(1, int(gap)), opened


# ----------------------------------------------------------------------
# tenant population
# ----------------------------------------------------------------------
def account_of(index: int) -> str:
    return f"t{index:06d}"


class TenantMix:
    """Zipf-popular tenant chooser over a light/heavy population.

    Popularity rank is decoupled from tenant id by a seeded affine
    bijection (cheap pseudo-shuffle -- no quarter-million-entry
    permutation tables), so "hot" tenants are scattered across the id
    space.  Heaviness is a seeded per-tenant hash draw; the single most
    popular tenant (``anchor_index``) is always heavy and owns the
    hotspot directory.
    """

    def __init__(
        self,
        tenants: int,
        heavy_fraction: float,
        seed: int,
        alpha: float = 1.05,
    ):
        if tenants < 1:
            raise ValueError("need at least one tenant")
        if not 0.0 <= heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be in [0, 1]")
        self.tenants = tenants
        self.heavy_fraction = heavy_fraction
        self.seed = seed
        self._sampler = ZipfSampler(n=tenants, alpha=alpha)
        stride = (zlib.crc32(f"{seed}:stride".encode()) % tenants) | 1
        while math.gcd(stride, tenants) != 1:
            stride += 2
        self._stride = stride
        self._offset = zlib.crc32(f"{seed}:offset".encode()) % tenants

    def tenant_at_rank(self, rank: int) -> int:
        return (rank * self._stride + self._offset) % self.tenants

    def pick(self, rng: random.Random) -> int:
        return self.tenant_at_rank(self._sampler.sample(rng))

    @property
    def anchor_index(self) -> int:
        """The most popular tenant -- always heavy, owns the hotspot."""
        return self.tenant_at_rank(0)

    def is_heavy(self, index: int) -> bool:
        if index == self.anchor_index:
            return True
        draw = zlib.crc32(f"{self.seed}:heavy:{index}".encode()) % 1_000_000
        return draw < self.heavy_fraction * 1_000_000


def seed_layout(
    seed: int, index: int, heavy: bool, anchor: bool, tier: ScaleTier
) -> tuple[list[str], list[tuple[str, int]]]:
    """One tenant's deterministic starter tree: (dirs, (path, size)...).

    The explorer tracks ops against this layout and the runner
    materialises exactly it on the tenant's first touch, so generated
    ops are valid by construction.  The anchor's hotspot files are NOT
    listed here (there can be half a million); they are named by
    :func:`hotspot_name` and seeded in bulk by the runner.
    """
    account = account_of(index)
    rng = random.Random(f"{seed}:tree:{account}")
    dirs: list[str] = []
    if heavy:
        path = ""
        for level in range(tier.heavy_depth):
            path += f"/d{level:02d}"
            dirs.append(path)
        dirs.extend(("/side0", "/side1"))
        n_files = tier.heavy_files
    else:
        dirs.extend(("/docs", "/media"))
        n_files = tier.light_files
    files = []
    for i in range(n_files):
        parent = dirs[rng.randrange(len(dirs))]
        files.append((f"{parent}/seed{i:04d}", 64 + rng.randrange(192)))
    if anchor:
        dirs.append(HOTSPOT_DIR)
    return dirs, files


# ----------------------------------------------------------------------
# scenario specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that defines one deterministic scenario run."""

    name: str
    seed: int
    tier: ScaleTier
    mix: dict[str, float]
    diurnal: DiurnalCurve = field(default_factory=DiurnalCurve)
    burst: BurstModel = field(default_factory=BurstModel)
    storm_rate: float = 0.0  # p(arrival is a sync storm, not one op)
    scan_rate: float = 0.0  # p(arrival is a backup-style scan sweep)
    hotspot_bias: float = 0.35  # p(anchor-tenant op targets the hotspot)
    hotspot_alpha: float = 1.1  # Zipf skew over hotspot files
    tenant_alpha: float = 1.05  # Zipf skew over tenants
    span_days: float = 2.0  # sim-time the arrival stream covers
    env: DstConfig = field(
        default_factory=lambda: DstConfig(check_model=False)
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "mix", validate_mix(dict(self.mix)))
        for knob in ("storm_rate", "scan_rate", "hotspot_bias"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be a probability")
        if self.span_days <= 0:
            raise ValueError("span_days must be positive")

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        doc = {
            "format": SCENARIO_FORMAT,
            "name": self.name,
            "seed": self.seed,
            "tier": asdict(self.tier),
            "mix": dict(self.mix),
            "diurnal": asdict(self.diurnal),
            "burst": asdict(self.burst),
            "storm_rate": self.storm_rate,
            "scan_rate": self.scan_rate,
            "hotspot_bias": self.hotspot_bias,
            "hotspot_alpha": self.hotspot_alpha,
            "tenant_alpha": self.tenant_alpha,
            "span_days": self.span_days,
        }
        return doc

    @classmethod
    def from_json(cls, doc: dict, env: DstConfig) -> "ScenarioSpec":
        if doc.get("format") != SCENARIO_FORMAT:
            raise ValueError(f"not a {SCENARIO_FORMAT} document")
        return cls(
            name=doc["name"],
            seed=doc["seed"],
            tier=ScaleTier(**doc["tier"]),
            mix=dict(doc["mix"]),
            diurnal=DiurnalCurve(**doc["diurnal"]),
            burst=BurstModel(**doc["burst"]),
            storm_rate=doc["storm_rate"],
            scan_rate=doc["scan_rate"],
            hotspot_bias=doc["hotspot_bias"],
            hotspot_alpha=doc["hotspot_alpha"],
            tenant_alpha=doc["tenant_alpha"],
            span_days=doc["span_days"],
            env=env,
        )


def scenario_env(
    faulty: bool = False,
    corruption: bool = False,
    membership: bool = False,
    traffic: bool = False,
    partitions: bool = False,
    middlewares: int = 3,
) -> DstConfig:
    """The environment knobs a scenario weaves between arrivals.

    Per-gap probabilities are an order of magnitude below the DST
    defaults: a scenario has thousands of gaps, so the *count* of
    crashes/corruptions/scrubs per run stays comparable to a DST run
    rather than scaling with the op budget.
    """
    cfg = DstConfig(middlewares=middlewares, check_model=False)
    if faulty or corruption:
        cfg = replace(
            cfg,
            message_loss=0.01,
            io_error_rate=0.01,
            timeout_rate=0.005,
            slow_rate=0.01,
            crash_rate=0.0015,
            storm_rate=0.002,
        )
    if corruption:
        cfg = replace(
            cfg,
            bitrot_rate=0.0005,
            torn_write_rate=0.2,
            corrupt_rate=0.002,
            scrub_rate=0.0005,
        )
    if membership:
        cfg = replace(
            cfg, membership_rate=0.0008, rebalance_rate=0.05, max_membership=6
        )
    if traffic:
        cfg = with_traffic_flags(cfg)
    if partitions:
        cfg = replace(cfg, partition_rate=0.0012, hinted_handoff=True)
    return cfg


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------
def _spec(name: str, tier: str | ScaleTier, seed: int, env: DstConfig | None,
          **overrides) -> ScenarioSpec:
    tier_obj = TIERS[tier] if isinstance(tier, str) else tier
    return ScenarioSpec(
        name=name,
        seed=seed,
        tier=tier_obj,
        env=env or scenario_env(),
        **overrides,
    )


def steady_mix(tier="smoke", seed=0, env=None) -> ScenarioSpec:
    """The baseline day: POSIX-ish op mix under a gentle diurnal curve."""
    return _spec(
        "steady-mix", tier, seed, env,
        mix={
            "read": 0.38, "write": 0.22, "list": 0.16, "stat": 0.10,
            "mkdir": 0.05, "delete": 0.04, "move": 0.025, "copy": 0.015,
            "rename": 0.007, "rmdir": 0.003,
        },
        burst=BurstModel(rate=0.002, min_ops=8, max_ops=40),
    )


def sync_storm(tier="smoke", seed=0, env=None) -> ScenarioSpec:
    """Dropbox-shaped sync traffic: write fan-out, rename into place.

    Storms land as a batch directory of ``storm_fanout`` ``.part``
    writes followed by the rename sweep that publishes them -- the
    rapid write/rename fan-out pattern sync clients emit after a local
    bulk change.
    """
    return _spec(
        "sync-storm", tier, seed, env,
        mix={
            "write": 0.34, "read": 0.20, "rename": 0.10, "list": 0.12,
            "stat": 0.08, "mkdir": 0.06, "delete": 0.06, "move": 0.03,
            "copy": 0.007, "rmdir": 0.003,
        },
        storm_rate=0.05,
        burst=BurstModel(rate=0.006, min_ops=10, max_ops=60),
        span_days=1.0,
    )


def hotspot_read(tier="smoke", seed=0, env=None) -> ScenarioSpec:
    """Skewed readers hammering the anchor's huge hot directory."""
    return _spec(
        "hotspot-read", tier, seed, env,
        mix={
            "read": 0.52, "list": 0.22, "stat": 0.14, "write": 0.08,
            "mkdir": 0.02, "delete": 0.02,
        },
        hotspot_bias=0.65,
        hotspot_alpha=1.2,
        tenant_alpha=1.25,
        burst=BurstModel(rate=0.003, min_ops=10, max_ops=50),
    )


def burst_rush(tier="smoke", seed=0, env=None) -> ScenarioSpec:
    """Monday morning: steep diurnal swing plus aggressive bursts."""
    return _spec(
        "burst-rush", tier, seed, env,
        mix={
            "read": 0.30, "write": 0.28, "list": 0.14, "stat": 0.10,
            "mkdir": 0.07, "delete": 0.05, "move": 0.03, "copy": 0.02,
            "rename": 0.007, "rmdir": 0.003,
        },
        diurnal=DiurnalCurve(trough=0.1, peak=2.4),
        burst=BurstModel(rate=0.012, min_ops=20, max_ops=120, squeeze=0.02),
        span_days=1.0,
    )


def backup_scan(tier="smoke", seed=0, env=None) -> ScenarioSpec:
    """Backup/restore agents sweeping whole trees while writes trickle."""
    return _spec(
        "backup-scan", tier, seed, env,
        mix={
            "list": 0.34, "stat": 0.22, "read": 0.24, "write": 0.14,
            "mkdir": 0.03, "delete": 0.03,
        },
        scan_rate=0.08,
        burst=BurstModel(rate=0.002, min_ops=6, max_ops=30),
    )


def split_brain_storm(tier="smoke", seed=0, env=None) -> ScenarioSpec:
    """Sync traffic through recurring link-level partitions.

    The sync-storm write fan-out keeps landing while asymmetric cuts
    sever a middleware from slices of the storage fleet (and sometimes
    its gossip peers); hinted handoff keeps the writes available and
    the V8 oracle holds the heal-time promise -- every cut heals, the
    hint store drains to empty, and no acknowledged write is lost
    (docs/PARTITIONS.md).
    """
    env = env or scenario_env(faulty=True)
    if not env.partition_rate:
        env = replace(env, partition_rate=0.0012, hinted_handoff=True)
    return _spec(
        "split-brain-storm", tier, seed, env,
        mix={
            "write": 0.32, "read": 0.22, "rename": 0.08, "list": 0.12,
            "stat": 0.08, "mkdir": 0.06, "delete": 0.06, "move": 0.04,
            "copy": 0.015, "rmdir": 0.005,
        },
        storm_rate=0.03,
        burst=BurstModel(rate=0.005, min_ops=10, max_ops=50),
        span_days=1.0,
    )


SCENARIOS = {
    "steady-mix": steady_mix,
    "sync-storm": sync_storm,
    "hotspot-read": hotspot_read,
    "burst-rush": burst_rush,
    "backup-scan": backup_scan,
    "split-brain-storm": split_brain_storm,
}


def build_scenario(
    name: str,
    tier: str | ScaleTier = "smoke",
    seed: int = 0,
    env: DstConfig | None = None,
) -> ScenarioSpec:
    """Look up a catalog scenario at a scale tier."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory(tier=tier, seed=seed, env=env)


# ----------------------------------------------------------------------
# per-tenant op streams
# ----------------------------------------------------------------------
class _TenantState:
    """The explorer's optimistic mirror of one tenant's tree."""

    __slots__ = (
        "index",
        "account",
        "heavy",
        "anchor",
        "dirs",
        "files",
        "own_dirs",
        "serial",
        "storms",
        "hot_extra",
    )

    def __init__(self, index: int, heavy: bool, anchor: bool,
                 spec: ScenarioSpec):
        self.index = index
        self.account = account_of(index)
        self.heavy = heavy
        self.anchor = anchor
        dirs, files = seed_layout(spec.seed, index, heavy, anchor, spec.tier)
        self.dirs = list(dirs)
        self.files = [path for path, _ in files]
        self.own_dirs: list[str] = []  # created at run time; rmdir-able
        self.serial = 0
        self.storms = 0
        self.hot_extra: list[str] = []  # files this run wrote into /hot

    # ------------------------------------------------------------------
    def _op(self, kind: str, path: str, dest: str | None = None) -> ClientOp:
        self.serial += 1
        return ClientOp(
            kind, path, dest=dest, tag=self.serial, account=self.account
        )

    def next_op(
        self,
        rng: random.Random,
        spec: ScenarioSpec,
        hotspot: ZipfSampler | None,
    ) -> ClientOp:
        if (
            self.anchor
            and hotspot is not None
            and rng.random() < spec.hotspot_bias
        ):
            return self._hotspot_op(rng, hotspot)
        kind = self._pick(rng, spec.mix)
        return self._make(kind, rng)

    def _pick(self, rng: random.Random, mix: dict[str, float]) -> str:
        roll = rng.random()
        cumulative = 0.0
        for kind, weight in mix.items():
            cumulative += weight
            if roll <= cumulative:
                return kind
        return "read"

    def _hotspot_op(self, rng: random.Random, hotspot: ZipfSampler) -> ClientOp:
        roll = rng.random()
        if roll < 0.55:
            return self._op(
                "read", f"{HOTSPOT_DIR}/{hotspot_name(hotspot.sample(rng))}"
            )
        if roll < 0.75:
            return self._op("list", HOTSPOT_DIR)
        if roll < 0.90:
            return self._op(
                "stat", f"{HOTSPOT_DIR}/{hotspot_name(hotspot.sample(rng))}"
            )
        path = f"{HOTSPOT_DIR}/x{self.serial + 1:06d}"
        self.hot_extra.append(path)
        return self._op("write", path)

    def _make(self, kind: str, rng: random.Random) -> ClientOp:
        dirs, files = self.dirs, self.files
        if kind in ("read", "stat", "delete", "move", "rename", "copy") and not files:
            kind = "write"  # nothing to touch yet: spend the arrival on a write
        if kind == "read" or kind == "stat":
            return self._op(kind, rng.choice(files))
        if kind == "write":
            if files and rng.random() < 0.30:  # overwrite
                return self._op("write", rng.choice(files))
            parent = rng.choice(dirs)
            path = f"{parent}/f{self.serial + 1:05d}"
            files.append(path)
            return self._op("write", path)
        if kind == "list":
            return self._op("list", rng.choice(dirs))
        if kind == "mkdir":
            parent = rng.choice(dirs)
            path = f"{parent}/n{self.serial + 1:05d}"
            dirs.append(path)
            self.own_dirs.append(path)
            return self._op("mkdir", path)
        if kind == "delete":
            path = rng.choice(files)
            files.remove(path)
            self.hot_extra = [p for p in self.hot_extra if p != path]
            return self._op("delete", path)
        if kind in ("move", "rename", "copy"):
            src = rng.choice(files)
            if kind == "rename":
                dest = src.rsplit("/", 1)[0] + f"/r{self.serial + 1:05d}"
            else:
                dest = f"{rng.choice(dirs)}/{kind[0]}{self.serial + 1:05d}"
            if dest == src:
                return self._op("stat", src)
            if kind == "copy":
                files.append(dest)
            else:
                files.remove(src)
                files.append(dest)
            return self._op(kind, src, dest=dest)
        if kind == "rmdir":
            if not self.own_dirs:
                return self._op("list", rng.choice(dirs))
            path = self.own_dirs.pop(rng.randrange(len(self.own_dirs)))
            prefix = path + "/"
            self.dirs[:] = [
                d for d in dirs if d != path and not d.startswith(prefix)
            ]
            self.own_dirs[:] = [
                d for d in self.own_dirs if not d.startswith(prefix)
            ]
            self.files[:] = [f for f in files if not f.startswith(prefix)]
            return self._op("rmdir", path)
        raise AssertionError(f"unhandled mix kind {kind!r}")

    # ------------------------------------------------------------------
    def storm_ops(self, rng: random.Random, fanout: int) -> list[ClientOp]:
        """One sync storm: batch dir, ``.part`` fan-out, rename sweep."""
        ops: list[ClientOp] = []
        if SYNC_DIR not in self.dirs:
            self.dirs.append(SYNC_DIR)
            ops.append(self._op("mkdir", SYNC_DIR))
        self.storms += 1
        batch = f"{SYNC_DIR}/b{self.storms:04d}"
        self.dirs.append(batch)
        self.own_dirs.append(batch)
        ops.append(self._op("mkdir", batch))
        finals = []
        for i in range(fanout):
            part = f"{batch}/item{i:03d}.part"
            ops.append(self._op("write", part))
            finals.append((part, f"{batch}/item{i:03d}"))
        for part, final in finals:
            ops.append(self._op("rename", part, dest=final))
            self.files.append(final)
        # A few items get revised immediately -- the second sync pass.
        for _, final in finals[: max(1, fanout // 8)]:
            ops.append(self._op("write", final))
        return ops

    def scan_ops(self, rng: random.Random, width: int = 6) -> list[ClientOp]:
        """A backup-agent sweep: list a run of dirs, stat some files."""
        ops = [self._op("list", d) for d in self.dirs[:width]]
        for _ in range(min(3, len(self.files))):
            ops.append(self._op("stat", rng.choice(self.files)))
        return ops


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
#: Background-protocol steps woven between arrivals (per-gap
#: probabilities).  Lighter than the DST table: a scenario has orders
#: of magnitude more gaps, and GC is deliberately absent (a
#: cluster-wide mark over every tenant account belongs in quiesce, not
#: between every few ops).
_SCENARIO_BG = (
    ("merge", 0.30),
    ("gossip_one", 0.10),
    ("gossip_round", 0.02),
    ("drop_caches", 0.01),
    ("anti_entropy", 0.004),
)


class ScenarioExplorer:
    """Expands a :class:`ScenarioSpec` into one deterministic schedule."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec

    def explore(self) -> Schedule:
        spec = self.spec
        tier, env = spec.tier, spec.env
        rng = random.Random(f"{spec.seed}:{spec.name}:scenario")
        mixer = TenantMix(
            tier.tenants, tier.heavy_fraction, spec.seed, alpha=spec.tenant_alpha
        )
        arrivals = ArrivalProcess(
            rng,
            mean_gap_us=spec.span_days * SIM_DAY_US / tier.ops,
            diurnal=spec.diurnal,
            burst=spec.burst,
        )
        hotspot = (
            ZipfSampler(n=tier.hotspot_files, alpha=spec.hotspot_alpha)
            if tier.hotspot_files
            else None
        )
        states: dict[int, _TenantState] = {}
        steps: list[Step] = []
        now_us = 0
        emitted = 0
        burst_tenant: int | None = None
        # Fault/membership bookkeeping (the DST explorer's idiom).
        down: list[int] = []
        recover_after = 0
        population = list(range(1, env.storage_nodes + 1))
        next_node = env.storage_nodes + 1
        transitions = 0
        open_cuts: list[list] = []  # [cut_id, gaps_until_heal]
        next_cut = 0
        while emitted < tier.ops:
            # -- environment weaving (rate-guarded like the DST explorer)
            if down:
                recover_after -= 1
                if recover_after <= 0:
                    steps.append(
                        Step("recover", args={"node": down.pop(0), "delay_us": 0})
                    )
            elif env.crash_rate and rng.random() < env.crash_rate:
                node = rng.randrange(env.storage_nodes) + 1
                if len(down) < env.max_down:
                    steps.append(Step("crash", args={"node": node, "delay_us": 0}))
                    down.append(node)
                    recover_after = rng.randint(3, 12)
            if env.storm_rate and rng.random() < env.storm_rate:
                steps.append(
                    Step(
                        "storm_on",
                        args={"duration_us": rng.randint(20_000, 200_000)},
                    )
                )
            if env.corrupt_rate and rng.random() < env.corrupt_rate:
                steps.append(
                    Step(
                        "corrupt",
                        args={
                            "node": rng.randrange(env.storage_nodes) + 1,
                            "mode": rng.choice(["bitflip", "truncate"]),
                        },
                    )
                )
            if env.scrub_rate and rng.random() < env.scrub_rate:
                steps.append(Step("scrub"))
            if env.flush_rate and rng.random() < env.flush_rate:
                steps.append(
                    Step("flush_groups", args={"mw": rng.randrange(env.middlewares)})
                )
            if env.membership_rate and rng.random() < env.membership_rate:
                if transitions < env.max_membership:
                    roll = rng.random()
                    if roll < 0.45 or len(population) <= env.replicas:
                        steps.append(Step("add_node"))
                        population.append(next_node)
                        next_node += 1
                    else:
                        victim = population[rng.randrange(len(population))]
                        kind = "drain_node" if roll < 0.80 else "remove_node"
                        steps.append(Step(kind, args={"node": victim}))
                        population.remove(victim)
                    transitions += 1
            if env.rebalance_rate and rng.random() < env.rebalance_rate:
                steps.append(Step("rebalance", args={"max": rng.choice((8, 16, 32))}))
            if env.partition_rate:
                for entry in open_cuts:
                    entry[1] -= 1
                while open_cuts and open_cuts[0][1] <= 0:
                    cut_id, _ = open_cuts.pop(0)
                    steps.append(Step("heal", args={"cut": cut_id}))
                if rng.random() < env.partition_rate:
                    if len(open_cuts) < env.max_partitions:
                        mw = rng.randrange(env.middlewares)
                        pool = sorted(population)
                        count = rng.randint(1, max(1, len(pool) // 2))
                        nodes = sorted(rng.sample(pool, min(count, len(pool))))
                        cut = f"c{next_cut}"
                        next_cut += 1
                        steps.append(
                            Step(
                                "partition",
                                args={
                                    "cut": cut,
                                    "mw": mw,
                                    "nodes": nodes,
                                    "gossip": rng.random() < 0.35,
                                    "mode": rng.choice(("both", "both", "in", "out")),
                                },
                            )
                        )
                        open_cuts.append([cut, rng.randint(6, 30)])
            # -- background protocol steps
            for kind, p in _SCENARIO_BG:
                if rng.random() >= p:
                    continue
                if kind in ("merge", "drop_caches"):
                    steps.append(
                        Step(kind, args={"mw": rng.randrange(env.middlewares)})
                    )
                else:
                    steps.append(Step(kind))
            # -- the next arrival
            gap, burst_opened = arrivals.next_gap(now_us)
            now_us += gap
            steps.append(Step("advance", args={"delta_us": gap}))
            if burst_opened or (arrivals.in_burst and burst_tenant is not None):
                if burst_opened:
                    burst_tenant = mixer.pick(rng)
                tenant = burst_tenant
            else:
                burst_tenant = None
                tenant = mixer.pick(rng)
            state = states.get(tenant)
            if state is None:
                state = _TenantState(
                    tenant,
                    heavy=mixer.is_heavy(tenant),
                    anchor=tenant == mixer.anchor_index,
                    spec=spec,
                )
                states[tenant] = state
            if spec.storm_rate and rng.random() < spec.storm_rate:
                emitted += self._emit_batch(
                    steps, rng, state, state.storm_ops(rng, tier.storm_fanout)
                )
            elif spec.scan_rate and rng.random() < spec.scan_rate:
                emitted += self._emit_batch(
                    steps, rng, state, state.scan_ops(rng)
                )
            else:
                steps.append(Step("op", session=state.index, op=state.next_op(rng, spec, hotspot)))
                emitted += 1
        # Tail hygiene: nothing down, no cut open, no storm window open.
        for node in down:
            steps.append(Step("recover", args={"node": node, "delay_us": 0}))
        for cut_id, _ in open_cuts:
            steps.append(Step("heal", args={"cut": cut_id}))
        steps.append(Step("storm_off"))
        return Schedule(
            seed=spec.seed,
            config={**env.to_json(), "scenario": spec.to_json()},
            steps=steps,
        )

    def _emit_batch(
        self,
        steps: list[Step],
        rng: random.Random,
        state: _TenantState,
        ops: list[ClientOp],
    ) -> int:
        """A rapid same-tenant batch: millisecond gaps, not diurnal ones."""
        for i, op in enumerate(ops):
            if i:
                steps.append(
                    Step("advance", args={"delta_us": rng.randint(500, 5_000)})
                )
            steps.append(Step("op", session=state.index, op=op))
        return len(ops)


def scenario_spec_of(schedule: Schedule) -> ScenarioSpec:
    """Recover the spec embedded in a scenario schedule's config."""
    doc = schedule.config.get("scenario")
    if not doc:
        raise ValueError("schedule has no embedded scenario spec")
    return ScenarioSpec.from_json(doc, env=DstConfig.from_json(schedule.config))
