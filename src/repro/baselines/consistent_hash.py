"""Plain Consistent Hash: the "pseudo filesystem" (paper §2, Fig 1b).

Files live at ``hash(full path)`` on the ring; directories are empty
marker objects whose key carries a trailing slash (exactly the pseudo-
directory convention OpenStack Swift documents).  There is **no index
whatsoever**, so:

* file access / MKDIR are O(1) -- one hash, one object op (Table 1);
* any operation that must *discover* a directory's members can only do
  so by enumerating the entire key space (:meth:`ObjectStore.scan`),
  which is the O(N) tax on LIST and COPY;
* RMDIR/MOVE then pay one object mutation per member, the O(n) term
  that dominates once per-object work (milliseconds) dwarfs per-key
  scanning (microseconds).
"""

from __future__ import annotations

from ..core.middleware import Entry
from ..core.namespace import normalize_path, parent_and_base, split_path
from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    ObjectNotFound,
    PathNotFound,
)
from .base import FilesystemAPI, TableRow


class ConsistentHashFS(FilesystemAPI):
    """CH pseudo-filesystem over the flat object store."""

    name = "consistent-hash"
    table_row = TableRow(
        architecture="Single Cloud",
        scalability="Yes",
        file_access="O(1)",
        mkdir="O(1)",
        rmdir_move="O(n)",
        list_="O(N)",
        copy="O(N)",
    )

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        super().__init__(cluster, account)

    # ------------------------------------------------------------------
    # key scheme
    # ------------------------------------------------------------------
    def _file_key(self, path: str) -> str:
        return f"ch:{self.account}:{path}"

    def _dir_key(self, path: str) -> str:
        return f"ch:{self.account}:{path.rstrip('/')}/"

    def _prefix(self, path: str = "/") -> str:
        base = f"ch:{self.account}:"
        return base + (path.rstrip("/") + "/" if path != "/" else "/")

    # ------------------------------------------------------------------
    # probes (success path O(1); precise errors walk the chain)
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        path = normalize_path(path)
        if path == "/":
            return True
        return self.store.exists(self._file_key(path)) or self.store.exists(
            self._dir_key(path)
        )

    def is_dir(self, path: str) -> bool:
        path = normalize_path(path)
        return path == "/" or self.store.exists(self._dir_key(path))

    def _require_parent(self, path: str) -> tuple[str, str]:
        parent, base = parent_and_base(normalize_path(path))
        if parent == "/" or self.store.exists(self._dir_key(parent)):
            return parent, base
        # Slow path: diagnose which component broke, like a real walk.
        probe = ""
        for component in split_path(parent):
            probe += "/" + component
            if self.store.exists(self._file_key(probe)):
                raise NotADirectory(probe)
            if not self.store.exists(self._dir_key(probe)):
                raise PathNotFound(probe)
        raise PathNotFound(parent)  # pragma: no cover - defensive

    def _require_absent(self, path: str) -> None:
        if self.exists(path):
            raise AlreadyExists(path)

    # ------------------------------------------------------------------
    # O(1) operations
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        path = normalize_path(path)
        if path == "/":
            raise AlreadyExists(path)
        self._require_parent(path)
        self._require_absent(path)
        self.store.put(self._dir_key(path), b"", meta={"dir": "1"})

    def write(self, path: str, data: bytes) -> None:
        path = normalize_path(path)
        self._require_parent(path)
        if self.store.exists(self._dir_key(path)):
            raise IsADirectory(path)
        self.store.put(self._file_key(path), data)

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        self._require_parent(path)
        if self.store.exists(self._dir_key(path)):
            raise IsADirectory(path)
        if not self.store.exists(self._file_key(path)):
            raise PathNotFound(path)
        return self.store.get(self._file_key(path)).data

    def delete(self, path: str) -> None:
        path = normalize_path(path)
        self._require_parent(path)
        if self.store.exists(self._dir_key(path)):
            raise IsADirectory(path)
        if not self.store.exists(self._file_key(path)):
            raise PathNotFound(path)
        self.store.delete(self._file_key(path))

    def stat(self, path: str) -> Entry:
        """One hash + one HEAD: the flat store's O(1) file access."""
        path = normalize_path(path)
        if path == "/":
            return Entry(name="/", kind="dir")
        _, base = parent_and_base(path)
        try:
            info = self.store.head(self._file_key(path))
            return Entry(name=base, kind="file", size=info.size, etag=info.etag)
        except ObjectNotFound:
            if self.store.exists(self._dir_key(path)):
                return Entry(name=base, kind="dir")
            self._require_parent(path)
            raise PathNotFound(path) from None

    # ------------------------------------------------------------------
    # member discovery: the O(N) scan
    # ------------------------------------------------------------------
    def _members(self, path: str) -> list[str]:
        """Every key under ``path`` -- costs one full key-space scan."""
        return self.store.scan(self._prefix(path))

    def listdir(self, path: str = "/", detailed: bool = False) -> list:
        path = normalize_path(path)
        if path != "/":
            self._require_parent(path)
            if self.store.exists(self._file_key(path)):
                raise NotADirectory(path)
            if not self.store.exists(self._dir_key(path)):
                raise PathNotFound(path)
        prefix = self._prefix(path)
        children: dict[str, str] = {}
        for key in self._members(path):
            rest = key[len(prefix):]
            if not rest:
                continue  # the directory's own marker
            head = rest.split("/", 1)[0]
            kind = "dir" if "/" in rest else "file"
            if kind == "dir" or head not in children:
                children[head] = (
                    "dir" if kind == "dir" or children.get(head) == "dir" else "file"
                )
        names = sorted(children)
        if not detailed:
            return names
        entries = []

        def head_entry(name: str) -> Entry:
            if children[name] == "dir":
                return Entry(name=name, kind="dir")
            full = path.rstrip("/") + "/" + name
            info = self.store.head(self._file_key(full))
            return Entry(name=name, kind="file", size=info.size, etag=info.etag)

        return self.store.parallel([lambda n=n: head_entry(n) for n in names])

    # ------------------------------------------------------------------
    # directory mutations: per-member object work
    # ------------------------------------------------------------------
    def rmdir(self, path: str, recursive: bool = True) -> None:
        path = normalize_path(path)
        if path == "/":
            raise InvalidPath(path, "cannot remove the root")
        self._require_parent(path)
        if self.store.exists(self._file_key(path)):
            raise NotADirectory(path)
        if not self.store.exists(self._dir_key(path)):
            raise PathNotFound(path)
        members = self._members(path)
        if not recursive and members:
            raise DirectoryNotEmpty(path)
        lanes = self.store.latency.data_concurrency
        self.store.parallel(
            [lambda k=k: self.store.delete(k, missing_ok=True) for k in members],
            lanes=lanes,
        )
        self.store.delete(self._dir_key(path), missing_ok=True)

    def move(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        self._require_parent(src)
        src_is_dir = self.store.exists(self._dir_key(src))
        src_is_file = self.store.exists(self._file_key(src))
        if not src_is_dir and not src_is_file:
            raise PathNotFound(src)
        self._require_parent(dst)
        self._require_absent(dst)
        self._guard_move(src, dst, src_is_dir)
        if src_is_file:
            self.store.copy(self._file_key(src), self._file_key(dst))
            self.store.delete(self._file_key(src))
            return
        # Every object under the directory must be rewritten: its key
        # embeds the full path.  This is the O(n) MOVE of Table 1.
        members = self._members(src)
        src_prefix, dst_prefix = self._prefix(src), self._prefix(dst)
        lanes = self.store.latency.data_concurrency

        def relocate(key: str) -> None:
            self.store.copy(key, dst_prefix + key[len(src_prefix):])
            self.store.delete(key)

        self.store.parallel([lambda k=k: relocate(k) for k in members], lanes=lanes)
        self.store.put(self._dir_key(dst), b"", meta={"dir": "1"})
        self.store.delete(self._dir_key(src), missing_ok=True)

    def copy(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src != "/":
            self._require_parent(src)
            if not self.exists(src):
                raise PathNotFound(src)
        self._require_parent(dst)
        self._require_absent(dst)
        if self.store.exists(self._file_key(src)):
            self.store.copy(self._file_key(src), self._file_key(dst))
            return
        if src == "/":
            raise InvalidPath(src, "cannot copy the root onto a child")
        members = self._members(src)
        src_prefix, dst_prefix = self._prefix(src), self._prefix(dst)
        lanes = self.store.latency.data_concurrency
        self.store.parallel(
            [
                lambda k=k: self.store.copy(k, dst_prefix + k[len(src_prefix):])
                for k in members
            ],
            lanes=lanes,
        )
        self.store.put(self._dir_key(dst), b"", meta={"dir": "1"})
