"""DP on Shared Disk: BlueSky/xFS/SCFS architecture (paper §2).

Dynamic partitioning where the metadata servers share one disk pool
instead of owning their shards.  Sharing requires strong consistency:
every metadata mutation takes a distributed lock and synchronously
flushes to the shared disks.  Per the CAP argument the paper makes,
partition tolerance is what gives: when the shared-disk fabric is
partitioned (:meth:`SharedDiskDPFS.partition_fabric`), *all* mutations
fail with :class:`ServiceUnavailable` until the fabric heals -- unlike
H2Cloud, whose eventually consistent NameRings keep accepting writes.
"""

from __future__ import annotations

from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import ServiceUnavailable
from .base import TableRow
from .dynamic_partition import DynamicPartitionFS
from .index_server import IndexProfile


class SharedDiskDPFS(DynamicPartitionFS):
    """Strongly consistent DP over a shared disk pool."""

    name = "shared-disk-dp"
    table_row = TableRow(
        architecture="Single Cluster",
        scalability="Constrained",
        file_access="O(d)",
        mkdir="O(1)",
        rmdir_move="O(1)",
        list_="O(m)",
        copy="O(n)",
    )

    def __init__(
        self,
        cluster: SwiftCluster,
        account: str = "user",
        index_servers: int = 4,
    ):
        self._fabric_up = True
        self.locks_taken = 0
        super().__init__(cluster, account, index_servers=index_servers)

    # ------------------------------------------------------------------
    # strong consistency: lock + synchronous shared-disk flush
    # ------------------------------------------------------------------
    def _mutation_overhead(self) -> None:
        if not self._fabric_up:
            raise ServiceUnavailable("shared-disk fabric partitioned")
        latency = self.cluster.latency
        self.clock.advance(latency.index_lock_us + latency.disk_seek_us)
        self.locks_taken += 1
        super()._mutation_overhead()

    # ------------------------------------------------------------------
    # the CAP trade-off, made executable
    # ------------------------------------------------------------------
    def partition_fabric(self) -> None:
        """Sever the shared-disk interconnect: mutations now fail."""
        self._fabric_up = False

    def heal_fabric(self) -> None:
        self._fabric_up = True

    @property
    def fabric_up(self) -> bool:
        return self._fabric_up
