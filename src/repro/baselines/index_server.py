"""In-memory metadata index servers: the "second cloud".

GFS/HDFS namenodes, AFS volume servers, Ceph/Panasas MDS clusters and
(by the paper's own inference, §5.3) Dropbox's metadata tier all keep
the directory tree in dedicated index servers next to the object
cloud.  :class:`IndexServer` models one such server: a dict of
directory tables plus a cost profile; :class:`DirTable` is the global
directory->server placement map the partitioned baselines share.

Cost model per client metadata operation:

* ``request_service_us`` once per client call (API frontend, auth,
  DB round trip -- dominant for the Dropbox profile);
* ``hop_rtt_us`` every time path resolution crosses to a different
  index server (this is what makes Dropbox's file access "constant
  with fluctuations" in Fig 13: usually zero hops, sometimes a few);
* ``op_us`` per directory-entry touch;
* ``commit_us`` per mutation (journal fsync / replicated commit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simcloud.clock import SimClock
from ..simcloud.errors import ServiceUnavailable


@dataclass(frozen=True)
class IndexProfile:
    """Service times of one metadata tier."""

    request_service_us: int = 1_000  # per client metadata call
    hop_rtt_us: int = 500  # per cross-server hop during resolution
    op_us: int = 300  # per directory-entry touch
    commit_us: int = 5_000  # per mutation (journal/replication)

    @classmethod
    def namenode(cls) -> "IndexProfile":
        """A GFS/HDFS-style in-memory namenode."""
        return cls(request_service_us=800, hop_rtt_us=0, op_us=200, commit_us=3_000)

    @classmethod
    def ceph_mds(cls) -> "IndexProfile":
        """A Ceph/Panasas-style MDS cluster node."""
        return cls(request_service_us=1_000, hop_rtt_us=500, op_us=300, commit_us=5_000)

    @classmethod
    def dropbox(cls) -> "IndexProfile":
        """Calibrated to the paper's Dropbox measurements (§5.3):
        MKDIR 150-200 ms, file access ~constant and above H2's 61 ms
        average, LIST within a whisker of H2Cloud's."""
        return cls(
            request_service_us=80_000,
            hop_rtt_us=4_000,
            op_us=300,
            commit_us=55_000,
        )

    @classmethod
    def zero(cls) -> "IndexProfile":
        return cls(0, 0, 0, 0)


@dataclass(frozen=True)
class EntryRec:
    """One directory entry inside an index server."""

    name: str
    kind: str  # "file" | "dir"
    target: str  # child dir-id for dirs, content object key for files
    size: int = 0
    etag: str = ""


class IndexServer:
    """One metadata server: directory tables keyed by directory id."""

    def __init__(self, server_id: int, clock: SimClock, profile: IndexProfile):
        self.server_id = server_id
        self.clock = clock
        self.profile = profile
        self.tables: dict[str, dict[str, EntryRec]] = {}
        self.load = 0  # entry touches since start (DP migration signal)
        self.available = True

    # ------------------------------------------------------------------
    def _check_available(self) -> None:
        if not self.available:
            raise ServiceUnavailable(f"index server {self.server_id} unreachable")

    def create_dir(self, dir_id: str) -> None:
        self._check_available()
        self.tables[dir_id] = {}
        self.clock.advance(self.profile.commit_us)

    def drop_dir(self, dir_id: str) -> None:
        self._check_available()
        self.tables.pop(dir_id, None)
        self.clock.advance(self.profile.commit_us)

    def lookup(self, dir_id: str, name: str) -> EntryRec | None:
        self._check_available()
        self.load += 1
        self.clock.advance(self.profile.op_us)
        return self.tables.get(dir_id, {}).get(name)

    def list_entries(self, dir_id: str) -> list[EntryRec]:
        self._check_available()
        table = self.tables.get(dir_id, {})
        self.load += len(table)
        self.clock.advance(self.profile.op_us * max(1, len(table)))
        return sorted(table.values(), key=lambda e: e.name)

    def upsert(self, dir_id: str, entry: EntryRec) -> None:
        self._check_available()
        self.load += 1
        self.tables.setdefault(dir_id, {})[entry.name] = entry
        self.clock.advance(self.profile.op_us + self.profile.commit_us)

    def remove(self, dir_id: str, name: str) -> None:
        self._check_available()
        self.load += 1
        self.tables.get(dir_id, {}).pop(name, None)
        self.clock.advance(self.profile.op_us + self.profile.commit_us)

    # ------------------------------------------------------------------
    # migration support (Dynamic Partition)
    # ------------------------------------------------------------------
    def export_dir(self, dir_id: str) -> dict[str, EntryRec]:
        self._check_available()
        return self.tables.pop(dir_id, {})

    def import_dir(self, dir_id: str, table: dict[str, EntryRec]) -> None:
        self._check_available()
        self.tables[dir_id] = table

    @property
    def dir_count(self) -> int:
        return len(self.tables)


class DirTable:
    """The directory-id -> index-server placement map."""

    def __init__(self, servers: list[IndexServer], clock: SimClock):
        if not servers:
            raise ValueError("need at least one index server")
        self.servers = {s.server_id: s for s in servers}
        self.clock = clock
        self._placement: dict[str, int] = {}
        self._current: int | None = None  # resolver hop state

    def place(self, dir_id: str, server_id: int) -> None:
        if server_id not in self.servers:
            raise KeyError(f"unknown index server {server_id}")
        self._placement[dir_id] = server_id

    def server_of(self, dir_id: str) -> IndexServer:
        return self.servers[self._placement[dir_id]]

    def placement_of(self, dir_id: str) -> int:
        return self._placement[dir_id]

    def forget(self, dir_id: str) -> None:
        self._placement.pop(dir_id, None)

    # ------------------------------------------------------------------
    # hop-aware access used during path resolution
    # ------------------------------------------------------------------
    def begin_request(self, profile: IndexProfile) -> None:
        self.clock.advance(profile.request_service_us)
        self._current = None

    def hop_to(self, dir_id: str, profile: IndexProfile) -> IndexServer:
        server = self.server_of(dir_id)
        if self._current is not None and self._current != server.server_id:
            self.clock.advance(profile.hop_rtt_us)
        self._current = server.server_id
        return server

    # ------------------------------------------------------------------
    # load statistics (DP rebalancing + scalability experiments)
    # ------------------------------------------------------------------
    def load_by_server(self) -> dict[int, int]:
        return {sid: s.load for sid, s in sorted(self.servers.items())}

    def dirs_by_server(self) -> dict[int, int]:
        counts = {sid: 0 for sid in self.servers}
        for server_id in self._placement.values():
            counts[server_id] += 1
        return counts

    def subtree_ids(self, root_id: str, children_of) -> list[str]:
        """All dir-ids under ``root_id`` (inclusive) via a callback."""
        out = []
        stack = [root_id]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(children_of(current))
        return out
