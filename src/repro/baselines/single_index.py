"""Single Index Server: the GFS/HDFS namenode architecture (paper §2).

One metadata server holds the entire directory tree; file content
lives in the object cloud.  Directory operations are fast (O(1)
re-links, O(m) listings) but "the centralized architecture results in
limited scalability": every metadata request funnels through one
machine, which :meth:`SingleIndexFS.saturation_factor` quantifies for
the scalability ablation.
"""

from __future__ import annotations

from ..simcloud.cluster import SwiftCluster
from .base import TableRow
from .index_server import IndexProfile
from .indexed_fs import IndexedFS


class SingleIndexFS(IndexedFS):
    """Two clouds, one namenode."""

    name = "single-index"
    index_servers = 1
    profile = IndexProfile.namenode()
    table_row = TableRow(
        architecture="Two Clouds",
        scalability="Limited",
        file_access="O(d)",
        mkdir="O(1)",
        rmdir_move="O(1)",
        list_="O(m)",
        copy="O(n)",
    )

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        super().__init__(cluster, account, index_servers=1)

    def _initial_server(self, parent_id, path):  # the only server
        return 0

    # ------------------------------------------------------------------
    # scalability analysis
    # ------------------------------------------------------------------
    def saturation_factor(self, concurrent_clients: int) -> float:
        """How much slower a metadata op gets with N concurrent clients.

        A single namenode serialises requests, so service time scales
        linearly with offered load; a partitioned tier divides it by
        the server count.  Returned as a multiplier on the base cost.
        """
        if concurrent_clients < 1:
            raise ValueError("need at least one client")
        return float(concurrent_clients)  # one server: no division

    @property
    def namenode(self):
        return self.table.servers[0]
