"""Shared surface for every filesystem in the comparison (Table 1).

The paper compares nine data structures for hosting a filesystem in
(or next to) an object storage cloud.  Each gets a concrete
implementation in this package, all speaking the same API as
:class:`repro.core.fs.H2CloudFS` so the benchmark harness and the
model-equivalence tests can drive any of them interchangeably:

    mkdir, makedirs, rmdir, write, read, delete, move, rename, copy,
    listdir, stat-ish exists/is_dir, walk, drop_caches, pump

Implementations charge the same simulated clock through the same
object store / container DB / index-server cost models, so measured
differences come from the *data structure*, exactly as in the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.middleware import Entry
from ..core.namespace import (
    join,
    normalize_path,
    parent_and_base,
    split_path,
)
from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import (
    AlreadyExists,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PathNotFound,
)

__all__ = ["Entry", "FilesystemAPI", "TableRow"]


@dataclass(frozen=True)
class TableRow:
    """One row of Table 1: the claimed complexity classes.

    Used by the Table-1 benchmark to print the paper's claims next to
    the empirically fitted exponents.
    """

    architecture: str
    scalability: str
    file_access: str
    mkdir: str
    rmdir_move: str
    list_: str
    copy: str


class FilesystemAPI(abc.ABC):
    """Abstract filesystem over a simulated cluster."""

    #: short identifier used by benchmarks and reports
    name: str = "abstract"
    #: the paper's Table-1 claims for this data structure
    table_row: TableRow | None = None

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        self.cluster = cluster
        self.account = account

    # ------------------------------------------------------------------
    # mandatory operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mkdir(self, path: str) -> None: ...

    @abc.abstractmethod
    def rmdir(self, path: str, recursive: bool = True) -> None: ...

    @abc.abstractmethod
    def write(self, path: str, data: bytes) -> None: ...

    @abc.abstractmethod
    def read(self, path: str) -> bytes: ...

    @abc.abstractmethod
    def delete(self, path: str) -> None: ...

    @abc.abstractmethod
    def move(self, src: str, dst: str) -> None: ...

    @abc.abstractmethod
    def copy(self, src: str, dst: str) -> None: ...

    @abc.abstractmethod
    def listdir(self, path: str = "/", detailed: bool = False) -> list: ...

    @abc.abstractmethod
    def exists(self, path: str) -> bool: ...

    @abc.abstractmethod
    def is_dir(self, path: str) -> bool: ...

    # ------------------------------------------------------------------
    # derived operations (shared behaviour)
    # ------------------------------------------------------------------
    def rename(self, src: str, dst: str) -> None:
        self.move(src, dst)

    def makedirs(self, path: str) -> None:
        partial = ""
        for component in split_path(path):
            partial += "/" + component
            if self.is_dir(partial):
                continue
            if self.exists(partial):
                raise NotADirectory(partial)
            self.mkdir(partial)

    def stat(self, path: str):
        """Lookup only (Fig 13's measured quantity); returns an Entry.

        The default delegates to the system's own existence machinery;
        subclasses override where their native lookup differs (hash
        probe, index walk, log scan, ...).
        """
        path = normalize_path(path)
        if path == "/":
            return Entry(name="/", kind="dir")
        _, base = parent_and_base(path)
        if not self.exists(path):
            raise PathNotFound(path)
        kind = "dir" if self.is_dir(path) else "file"
        return Entry(name=base, kind=kind)

    def walk(self, top: str = "/"):
        """Yield (dirpath, dirnames, filenames) top-down, like os.walk."""
        entries = self.listdir(top, detailed=True)
        dirnames = [e.name for e in entries if e.kind == "dir"]
        filenames = [e.name for e in entries if e.kind != "dir"]
        yield top, dirnames, filenames
        for name in dirnames:
            yield from self.walk(join(top if top != "/" else "/", name))

    def tree_size(self, top: str = "/") -> tuple[int, int]:
        dirs = files = 0
        for _, dirnames, filenames in self.walk(top):
            dirs += len(dirnames)
            files += len(filenames)
        return dirs, files

    # ------------------------------------------------------------------
    # maintenance hooks (no-ops unless a system is asynchronous)
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Settle any background machinery (default: nothing pending)."""

    def drop_caches(self) -> None:
        """Forget warm state so the next op pays cold-path costs."""

    # ------------------------------------------------------------------
    # shared guards
    # ------------------------------------------------------------------
    @staticmethod
    def _guard_move(src: str, dst: str, src_is_dir: bool) -> None:
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        if src_is_dir and (dst == src or dst.startswith(src + "/")):
            raise InvalidPath(dst, "destination is inside the moved directory")

    def _require_absent(self, path: str) -> None:
        if self.exists(path):
            raise AlreadyExists(path)

    @property
    def clock(self):
        return self.cluster.clock

    @property
    def store(self):
        return self.cluster.store
