"""Shared machinery for every index-server-backed filesystem.

Single Index Server (GFS/HDFS), Static Partition (AFS), Dynamic
Partition (Ceph/Panasas/Dropbox) and DP-on-Shared-Disk all share one
architecture: directory metadata in index servers, file bytes in the
object cloud, directory entries pointing at immutable content ids.
:class:`IndexedFS` implements the whole operation vocabulary once;
subclasses choose the placement policy, the cost profile, and any
extra per-mutation overhead (locks, partitions).

Because file content is keyed by an opaque id -- not by path -- MOVE
and RENAME never touch the object cloud: they re-link one directory
entry, the O(1) behaviour Table 1 credits to this family.
"""

from __future__ import annotations

import itertools

from ..core.middleware import Entry
from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PathNotFound,
)
from ..core.namespace import normalize_path, parent_and_base, split_path
from .base import FilesystemAPI
from .index_server import DirTable, EntryRec, IndexProfile, IndexServer

ROOT_ID = "d0"


class IndexedFS(FilesystemAPI):
    """Filesystem over a metadata tier + object cloud (two clouds)."""

    name = "indexed"
    profile: IndexProfile = IndexProfile()
    index_servers: int = 1

    def __init__(
        self,
        cluster: SwiftCluster,
        account: str = "user",
        index_servers: int | None = None,
        profile: IndexProfile | None = None,
    ):
        super().__init__(cluster, account)
        if profile is not None:
            self.profile = profile
        count = index_servers or self.index_servers
        servers = [
            IndexServer(i, cluster.clock, self.profile) for i in range(count)
        ]
        self.table = DirTable(servers, cluster.clock)
        self._ids = itertools.count(1)
        self._parents: dict[str, str] = {}  # dir_id -> parent dir_id
        self.table.place(ROOT_ID, self._initial_server(None, "/"))
        self.table.server_of(ROOT_ID).create_dir(ROOT_ID)
        self.mutations = 0

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _initial_server(self, parent_id: str | None, path: str) -> int:
        """Which index server hosts a new directory (placement policy)."""
        return 0

    def _mutation_overhead(self) -> None:
        """Extra per-mutation cost (locks, strong-consistency flushes)."""

    # ------------------------------------------------------------------
    # id plumbing
    # ------------------------------------------------------------------
    def _new_dir_id(self) -> str:
        return f"d{next(self._ids)}"

    def _new_content_key(self) -> str:
        return f"idx:{self.account}:{next(self._ids)}"

    def _children_dirs(self, dir_id: str) -> list[str]:
        server = self.table.server_of(dir_id)
        return [
            e.target
            for e in server.tables.get(dir_id, {}).values()
            if e.kind == "dir"
        ]

    def background(self, thunk):
        """Metadata housekeeping off the client path."""
        result, elapsed = self.clock.run_isolated(thunk)
        self.store.ledger.background_us += elapsed
        return result

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve(self, path: str) -> tuple[str, EntryRec | None]:
        """(parent dir id of final component, entry) -- ('', None) = root."""
        path = normalize_path(path)
        self.table.begin_request(self.profile)
        components = split_path(path)
        if not components:
            return ROOT_ID, None
        dir_id = ROOT_ID
        entry: EntryRec | None = None
        probe = ""
        for i, name in enumerate(components):
            probe += "/" + name
            server = self.table.hop_to(dir_id, self.profile)
            entry = server.lookup(dir_id, name)
            if entry is None:
                raise PathNotFound(probe)
            if i < len(components) - 1:
                if entry.kind != "dir":
                    raise NotADirectory(probe)
                dir_id = entry.target
        return dir_id, entry

    def _resolve_dir_id(self, path: str) -> str:
        parent_id, entry = self._resolve(path)
        if entry is None:
            return ROOT_ID
        if entry.kind != "dir":
            raise NotADirectory(path)
        return entry.target

    def _resolve_parent(self, path: str) -> tuple[str, str]:
        parent, base = parent_and_base(normalize_path(path))
        return self._resolve_dir_id(parent), base

    def _try_resolve(self, path: str):
        try:
            return self._resolve(path)
        except (PathNotFound, NotADirectory):
            return None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        path = normalize_path(path)
        if path == "/":
            raise AlreadyExists(path)
        parent_id, name = self._resolve_parent(path)
        server = self.table.hop_to(parent_id, self.profile)
        if server.lookup(parent_id, name) is not None:
            raise AlreadyExists(path)
        self._mutation_overhead()
        # The overhead hook may have rebalanced directories across
        # servers (Dynamic Partition): re-resolve placements after it.
        server = self.table.server_of(parent_id)
        dir_id = self._new_dir_id()
        target = self._initial_server(parent_id, path)
        self.table.place(dir_id, target)
        self._parents[dir_id] = parent_id
        self.table.servers[target].create_dir(dir_id)
        server.upsert(parent_id, EntryRec(name=name, kind="dir", target=dir_id))
        self.mutations += 1

    def write(self, path: str, data: bytes) -> None:
        parent_id, name = self._resolve_parent(path)
        server = self.table.hop_to(parent_id, self.profile)
        existing = server.lookup(parent_id, name)
        if existing is not None and existing.kind == "dir":
            raise IsADirectory(path)
        self._mutation_overhead()
        server = self.table.server_of(parent_id)  # placements may have moved
        key = existing.target if existing else self._new_content_key()
        info = self.store.put(key, data)
        server.upsert(
            parent_id,
            EntryRec(name=name, kind="file", target=key, size=info.size, etag=info.etag),
        )
        self.mutations += 1

    def read(self, path: str) -> bytes:
        _, entry = self._resolve(path)
        if entry is None or entry.kind != "file":
            raise IsADirectory(path)
        return self.store.get(entry.target).data

    def delete(self, path: str) -> None:
        parent_id, entry = self._resolve(path)
        if entry is None or entry.kind != "file":
            raise IsADirectory(path)
        self._mutation_overhead()
        server = self.table.hop_to(parent_id, self.profile)
        server.remove(parent_id, entry.name)
        self.store.delete(entry.target, missing_ok=True)
        self.mutations += 1

    def rmdir(self, path: str, recursive: bool = True) -> None:
        path = normalize_path(path)
        if path == "/":
            raise InvalidPath(path, "cannot remove the root")
        parent_id, entry = self._resolve(path)
        if entry is None:
            raise PathNotFound(path)
        if entry.kind != "dir":
            raise NotADirectory(path)
        target_server = self.table.hop_to(entry.target, self.profile)
        if not recursive and target_server.tables.get(entry.target):
            raise DirectoryNotEmpty(path)
        self._mutation_overhead()
        server = self.table.hop_to(parent_id, self.profile)
        server.remove(parent_id, entry.name)
        self.mutations += 1
        # Subtree teardown (index tables + content objects) is async
        # housekeeping, like H2Cloud's GC: the client sees O(1).
        self.background(lambda: self._drop_subtree(entry.target))

    def _drop_subtree(self, dir_id: str) -> None:
        for sub_id in self.table.subtree_ids(dir_id, self._children_dirs):
            server = self.table.server_of(sub_id)
            for rec in list(server.tables.get(sub_id, {}).values()):
                if rec.kind == "file":
                    self.store.delete(rec.target, missing_ok=True)
            server.drop_dir(sub_id)
            self.table.forget(sub_id)
            self._parents.pop(sub_id, None)

    def move(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        src_parent_id, entry = self._resolve(src)
        if entry is None:
            raise PathNotFound(src)
        dst_parent_id, dst_name = self._resolve_parent(dst)
        dst_server = self.table.hop_to(dst_parent_id, self.profile)
        if dst_server.lookup(dst_parent_id, dst_name) is not None:
            raise AlreadyExists(dst)
        self._guard_move(src, dst, entry.kind == "dir")
        if entry.kind == "dir":
            self._pre_dir_move(entry.target, dst_parent_id, dst)
        self._mutation_overhead()
        dst_server = self.table.server_of(dst_parent_id)  # may have moved
        src_server = self.table.hop_to(src_parent_id, self.profile)
        src_server.remove(src_parent_id, entry.name)
        moved = EntryRec(
            name=dst_name,
            kind=entry.kind,
            target=entry.target,
            size=entry.size,
            etag=entry.etag,
        )
        dst_server.upsert(dst_parent_id, moved)
        if entry.kind == "dir":
            self._parents[entry.target] = dst_parent_id
            self._after_dir_move(entry.target, dst_parent_id, dst)
        self.mutations += 1

    def _pre_dir_move(self, dir_id: str, dst_parent_id: str, dst: str) -> None:
        """Hook: veto a directory move before any mutation happens."""

    def _after_dir_move(self, dir_id: str, new_parent_id: str, dst: str) -> None:
        """Hook: static partitioning migrates the subtree here."""

    def copy(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src != "/":
            src_info = self._try_resolve(src)
            self._resolve_parent(src)  # precise chain errors
            if src_info is None or src_info[1] is None:
                raise PathNotFound(src)
            entry = src_info[1]
        else:
            entry = None
        dst_parent_id, dst_name = self._resolve_parent(dst)
        dst_server = self.table.hop_to(dst_parent_id, self.profile)
        if dst_server.lookup(dst_parent_id, dst_name) is not None:
            raise AlreadyExists(dst)
        if entry is None:
            raise InvalidPath(src, "cannot copy the root onto a child")
        self._mutation_overhead()
        dst_server = self.table.server_of(dst_parent_id)  # may have moved
        if entry.kind == "file":
            key = self._new_content_key()
            self.store.copy(entry.target, key)
            dst_server.upsert(
                dst_parent_id,
                EntryRec(name=dst_name, kind="file", target=key,
                         size=entry.size, etag=entry.etag),
            )
        else:
            self._copy_tree(entry.target, dst_parent_id, dst_name, dst)
        self.mutations += 1

    def _copy_tree(
        self, src_dir_id: str, dst_parent_id: str, dst_name: str, dst_path: str
    ) -> None:
        new_id = self._new_dir_id()
        target = self._initial_server(dst_parent_id, dst_path)
        self.table.place(new_id, target)
        self._parents[new_id] = dst_parent_id
        self.table.servers[target].create_dir(new_id)
        src_server = self.table.hop_to(src_dir_id, self.profile)
        entries = src_server.list_entries(src_dir_id)
        new_server = self.table.servers[target]
        copies = []
        # A fresh subtree has no concurrent writers, so its entries are
        # bulk-loaded under a single commit -- this is what keeps COPY
        # at O(n) *object* work for DP systems (Fig 11: the three
        # systems are close), instead of n metadata commits.
        bulk: dict[str, EntryRec] = {}
        for rec in entries:
            if rec.kind == "file":
                key = self._new_content_key()
                copies.append(lambda r=rec, k=key: self.store.copy(r.target, k))
                bulk[rec.name] = EntryRec(
                    name=rec.name, kind="file", target=key,
                    size=rec.size, etag=rec.etag,
                )
        if bulk:
            new_server.tables.setdefault(new_id, {}).update(bulk)
            self.clock.advance(
                self.profile.commit_us + self.profile.op_us * len(bulk)
            )
        for rec in entries:
            if rec.kind == "dir":
                self._copy_tree(rec.target, new_id, rec.name, dst_path + "/" + rec.name)
        if copies:
            self.store.parallel(copies, lanes=self.store.latency.data_concurrency)
        self.table.hop_to(dst_parent_id, self.profile).upsert(
            dst_parent_id, EntryRec(name=dst_name, kind="dir", target=new_id)
        )

    def listdir(self, path: str = "/", detailed: bool = False) -> list:
        dir_id = self._resolve_dir_id(path)
        server = self.table.hop_to(dir_id, self.profile)
        entries = server.list_entries(dir_id)
        if detailed:
            return [
                Entry(name=e.name, kind=e.kind, size=e.size, etag=e.etag)
                for e in entries
            ]
        return [e.name for e in entries]

    def exists(self, path: str) -> bool:
        return self._try_resolve(path) is not None

    def is_dir(self, path: str) -> bool:
        info = self._try_resolve(path)
        return info is not None and (info[1] is None or info[1].kind == "dir")

    def stat(self, path: str) -> Entry:
        path = normalize_path(path)
        if path == "/":
            return Entry(name="/", kind="dir")
        _, entry = self._resolve(path)
        return Entry(name=entry.name, kind=entry.kind, size=entry.size, etag=entry.etag)
