"""Static Partition: the AFS volume architecture (paper §2).

Top-level directories ("volumes") are assigned to index servers once,
at creation, by hashing the directory name; everything beneath a
volume stays on its server forever.  Simple and fast within a volume,
but "statically partitioned files and directories have a negative
effect on filesystem operations with different partitions involved":

* a cross-volume MOVE cannot re-link a pointer -- in ``strict`` mode it
  fails with :class:`CrossDeviceMove` (AFS/EXDEV behaviour); otherwise
  it degrades to a subtree migration, paying per-directory and
  per-entry costs;
* volumes cannot be split, so load imbalance is permanent
  (:meth:`imbalance` feeds the scalability ablation).
"""

from __future__ import annotations

import hashlib

from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import CrossDeviceMove
from ..core.namespace import normalize_path, split_path
from .base import TableRow
from .index_server import EntryRec, IndexProfile
from .indexed_fs import ROOT_ID, IndexedFS


class StaticPartitionFS(IndexedFS):
    """AFS-style statically partitioned metadata."""

    name = "static-partition"
    profile = IndexProfile.ceph_mds()
    table_row = TableRow(
        architecture="Single Cloud",
        scalability="No",
        file_access="O(d)",
        mkdir="O(1)",
        rmdir_move="O(1)",
        list_="O(m)",
        copy="O(n)",
    )

    def __init__(
        self,
        cluster: SwiftCluster,
        account: str = "user",
        partitions: int = 4,
        strict: bool = False,
    ):
        self.partitions = partitions
        self.strict = strict
        super().__init__(cluster, account, index_servers=partitions)

    # ------------------------------------------------------------------
    # placement: volume = top-level directory, hashed once
    # ------------------------------------------------------------------
    def _initial_server(self, parent_id, path: str) -> int:
        if parent_id is None:  # the root itself
            return 0
        components = split_path(normalize_path(path))
        volume = components[0]
        digest = hashlib.md5(volume.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.partitions

    # ------------------------------------------------------------------
    # cross-partition moves
    # ------------------------------------------------------------------
    def _pre_dir_move(self, dir_id: str, dst_parent_id: str, dst: str) -> None:
        """AFS semantics: veto cross-volume renames in strict mode."""
        if not self.strict:
            return
        current = self.table.placement_of(dir_id)
        wanted = self._initial_server(dst_parent_id, dst)
        if current != wanted:
            raise CrossDeviceMove(dir_id, dst)

    def _after_dir_move(self, dir_id: str, new_parent_id: str, dst: str) -> None:
        """Re-home the subtree if the move crossed volumes."""
        current = self.table.placement_of(dir_id)
        wanted = self._initial_server(new_parent_id, dst)
        if current != wanted:
            self._migrate_subtree(dir_id, wanted)

    def _migrate_subtree(self, dir_id: str, target: int) -> None:
        """Ship every directory table of the subtree to ``target``.

        This is the expensive path static partitioning is penalised
        for: per-directory export/import plus per-entry copy costs,
        charged in the foreground (the client waits for the volume to
        land before the rename is visible atomically).
        """
        for sub_id in self.table.subtree_ids(dir_id, self._children_dirs):
            source = self.table.server_of(sub_id)
            if source.server_id == target:
                continue
            table = source.export_dir(sub_id)
            # Per-entry transfer between metadata servers.
            self.clock.advance(
                self.profile.hop_rtt_us
                + self.profile.op_us * max(1, len(table))
                + self.profile.commit_us
            )
            self.table.servers[target].import_dir(sub_id, table)
            self.table.place(sub_id, target)

    # ------------------------------------------------------------------
    # imbalance metric (why Table 1 says scalability "No")
    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        """max/mean directory count across partitions (1.0 = perfect)."""
        counts = list(self.table.dirs_by_server().values())
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
