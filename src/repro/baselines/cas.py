"""Content Addressable Storage with a multi-layer index (paper §2).

Foundation/Venti-style CAS couples location to content: a file blob
lives at ``hash(content)``; a directory is a *pointer block* listing
``(name, kind, hash)`` of its children, itself stored at the hash of
its serialization (the Camlistore trick the paper cites).  A mutable
account root pointer anchors the Merkle tree.

Cost profile (Table 1's row, reproduced mechanically):

* **file access O(1)** -- given a content hash, one GET
  (:meth:`read_by_hash`); path-based access walks pointer blocks O(d);
* **LIST O(m)** -- one pointer block holds the whole child list;
* **every mutation O(N)** -- pointer blocks are immutable, so a change
  re-hashes the ancestor chain *and* (the multi-layer index the paper
  highlights) rewrites the account-wide flat index object, whose size
  is proportional to the number of entries in the filesystem;
* **COPY O(N)** -- but note the data blobs are deduplicated for free:
  copying a tree moves zero file bytes.
"""

from __future__ import annotations

import hashlib

from ..core.middleware import Entry
from ..core.namespace import normalize_path, parent_and_base, split_path
from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    ObjectNotFound,
    PathNotFound,
)
from .base import FilesystemAPI, TableRow


def _hash(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


class CASFS(FilesystemAPI):
    """Content-addressed filesystem with pointer blocks + flat index."""

    name = "cas"
    table_row = TableRow(
        architecture="Single Cloud",
        scalability="Yes",
        file_access="O(1)",
        mkdir="O(N)",
        rmdir_move="O(N)",
        list_="O(m)",
        copy="O(N)",
    )

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        super().__init__(cluster, account)
        empty = self._put_dir_block({})
        self.store.put(self._root_key(), empty.encode("ascii"))
        self._rewrite_index({})

    # ------------------------------------------------------------------
    # object keys
    # ------------------------------------------------------------------
    def _root_key(self) -> str:
        return f"cas:root:{self.account}"

    def _index_key(self) -> str:
        return f"cas:index:{self.account}"

    @staticmethod
    def _blob_key(digest: str) -> str:
        return f"cas:b:{digest}"

    @staticmethod
    def _block_key(digest: str) -> str:
        return f"cas:p:{digest}"

    # ------------------------------------------------------------------
    # pointer blocks
    # ------------------------------------------------------------------
    @staticmethod
    def _serialize_block(entries: dict[str, tuple[str, str]]) -> bytes:
        from ..core.formatter import escape

        lines = [
            f"{escape(name)}|{kind}|{digest}"
            for name, (kind, digest) in sorted(entries.items())
        ]
        return ("\n".join(lines) + "\n" if lines else "").encode("ascii")

    @staticmethod
    def _parse_block(data: bytes) -> dict[str, tuple[str, str]]:
        from ..core.formatter import unescape

        entries: dict[str, tuple[str, str]] = {}
        for line in data.decode("ascii").splitlines():
            name, kind, digest = line.split("|")
            entries[unescape(name)] = (kind, digest)
        return entries

    def _put_dir_block(self, entries: dict[str, tuple[str, str]]) -> str:
        data = self._serialize_block(entries)
        digest = _hash(data)
        key = self._block_key(digest)
        if not self.store.exists(key):  # content addressing dedups blocks
            self.store.put(key, data)
        return digest

    def _get_dir_block(self, digest: str) -> dict[str, tuple[str, str]]:
        return self._parse_block(self.store.get(self._block_key(digest)).data)

    def _root_digest(self) -> str:
        return self.store.get(self._root_key()).data.decode("ascii")

    # ------------------------------------------------------------------
    # the multi-layer flat index: rewritten on EVERY mutation -- O(N)
    # ------------------------------------------------------------------
    def _collect_tree(
        self, digest: str, base: str, out: dict[str, tuple[str, str]]
    ) -> None:
        block = self._get_dir_block(digest)
        # Per-entry traversal work: the index rebuild touches every
        # entry in the filesystem, which is the O(N) the paper charges
        # this data structure for.
        self.clock.advance(len(block) * self.cluster.latency.db_row_us)
        for name, (kind, child_digest) in block.items():
            path = (base.rstrip("/") or "") + "/" + name
            out[path] = (kind, child_digest)
            if kind == "dir":
                self._collect_tree(child_digest, path, out)

    def _rewrite_index(self, tree: dict[str, tuple[str, str]]) -> None:
        from ..core.formatter import escape

        lines = [
            f"{escape(path)}|{kind}|{digest}"
            for path, (kind, digest) in sorted(tree.items())
        ]
        # Rebuilding the index means re-writing one row per entry in
        # the filesystem -- the dominant O(N) term of CAS mutations.
        self.clock.advance(len(lines) * self.cluster.latency.db_write_us)
        self.store.put(
            self._index_key(), ("\n".join(lines) + "\n").encode("ascii")
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _walk(self, path: str) -> tuple[str, str]:
        """(kind, digest) of ``path``; raises precise resolution errors."""
        path = normalize_path(path)
        digest = self._root_digest()
        if path == "/":
            return "dir", digest
        kind = "dir"
        probe = ""
        for component in split_path(path):
            if kind != "dir":
                raise NotADirectory(probe)
            probe += "/" + component
            entries = self._get_dir_block(digest)
            if component not in entries:
                raise PathNotFound(probe)
            kind, digest = entries[component]
        return kind, digest

    def _try_walk(self, path: str):
        try:
            return self._walk(path)
        except (PathNotFound, NotADirectory):
            return None

    def _walk_dir(self, path: str) -> str:
        """Digest of a path that must resolve to a directory."""
        kind, digest = self._walk(path)
        if kind != "dir":
            raise NotADirectory(path)
        return digest

    # ------------------------------------------------------------------
    # the Merkle rebuild of one mutation
    # ------------------------------------------------------------------
    def _rebuild(self, path: str, mutate) -> None:
        """Apply ``mutate(parent_entries, base)`` and re-hash to the root.

        The ancestor chain gets new pointer blocks (O(d) small PUTs);
        then the flat index is rewritten, the O(N) cost that dominates.
        """
        path = normalize_path(path)
        components = split_path(path)
        # Load the blocks along the path (also validates the chain).
        digests = [self._root_digest()]
        blocks = [self._get_dir_block(digests[0])]
        probe = ""
        for component in components[:-1]:
            probe += "/" + component
            entries = blocks[-1]
            if component not in entries:
                raise PathNotFound(probe)
            kind, digest = entries[component]
            if kind != "dir":
                raise NotADirectory(probe)
            digests.append(digest)
            blocks.append(self._get_dir_block(digest))
        mutate(blocks[-1], components[-1])
        # Re-hash bottom-up.
        child_digest = self._put_dir_block(blocks[-1])
        for level in range(len(blocks) - 2, -1, -1):
            name = components[level]
            blocks[level][name] = ("dir", child_digest)
            child_digest = self._put_dir_block(blocks[level])
        self.store.put(self._root_key(), child_digest.encode("ascii"))
        tree: dict[str, tuple[str, str]] = {}
        self._collect_tree(child_digest, "/", tree)
        self._rewrite_index(tree)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        if normalize_path(path) == "/":
            raise AlreadyExists("/")
        empty = self._put_dir_block({})

        def mutate(entries, base):
            if base in entries:
                raise AlreadyExists(path)
            entries[base] = ("dir", empty)

        self._rebuild(path, mutate)

    def write(self, path: str, data: bytes) -> None:
        digest = _hash(data)
        key = self._blob_key(digest)
        if not self.store.exists(key):  # free deduplication
            self.store.put(key, data)

        def mutate(entries, base):
            if base in entries and entries[base][0] == "dir":
                raise IsADirectory(path)
            entries[base] = ("file", digest)

        self._rebuild(path, mutate)

    def read(self, path: str) -> bytes:
        kind, digest = self._walk(path)
        if kind == "dir":
            raise IsADirectory(path)
        return self.store.get(self._blob_key(digest)).data

    def read_by_hash(self, digest: str) -> bytes:
        """The O(1) access CAS is famous for: one GET by content hash."""
        try:
            return self.store.get(self._blob_key(digest)).data
        except ObjectNotFound:
            raise PathNotFound(f"<blob {digest}>") from None

    def hash_of(self, path: str) -> str:
        kind, digest = self._walk(path)
        if kind == "dir":
            raise IsADirectory(path)
        return digest

    def delete(self, path: str) -> None:
        def mutate(entries, base):
            if base not in entries:
                raise PathNotFound(path)
            if entries[base][0] == "dir":
                raise IsADirectory(path)
            del entries[base]

        self._rebuild(path, mutate)

    def rmdir(self, path: str, recursive: bool = True) -> None:
        path = normalize_path(path)
        if path == "/":
            raise InvalidPath(path, "cannot remove the root")
        kind, digest = self._walk(path)
        if kind != "dir":
            raise NotADirectory(path)
        if not recursive and self._get_dir_block(digest):
            raise DirectoryNotEmpty(path)

        def mutate(entries, base):
            del entries[base]

        self._rebuild(path, mutate)

    def move(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        src_kind, src_digest = self._walk(src)
        parent, _ = parent_and_base(dst)
        self._walk_dir(parent)  # precise destination-parent errors
        if self._try_walk(dst) is not None:
            raise AlreadyExists(dst)
        self._guard_move(src, dst, src_kind == "dir")

        def remove(entries, base):
            del entries[base]

        self._rebuild(src, remove)

        def insert(entries, base):
            entries[base] = (src_kind, src_digest)

        # The subtree's blocks are content-addressed and immutable, so a
        # MOVE re-links one pointer -- all the cost is the index rewrite.
        self._rebuild(dst, insert)

    def copy(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src != "/":
            src_info = self._try_walk(src)
            parent, _ = parent_and_base(src)
            self._walk_dir(parent)
            if src_info is None:
                raise PathNotFound(src)
        parent, _ = parent_and_base(dst)
        self._walk_dir(parent)
        if self._try_walk(dst) is not None:
            raise AlreadyExists(dst)
        if src == "/":
            raise InvalidPath(src, "cannot copy the root onto a child")
        kind, digest = src_info

        def insert(entries, base):
            entries[base] = (kind, digest)

        # Content addressing makes COPY pure metadata: blobs are shared.
        self._rebuild(dst, insert)

    def listdir(self, path: str = "/", detailed: bool = False) -> list:
        kind, digest = self._walk(path)
        if kind != "dir":
            raise NotADirectory(path)
        entries = self._get_dir_block(digest)
        names = sorted(entries)
        if not detailed:
            return names
        out = []
        for name in names:
            child_kind, child_digest = entries[name]
            if child_kind == "dir":
                out.append(Entry(name=name, kind="dir"))
            else:
                info = self.store.head(self._blob_key(child_digest))
                out.append(
                    Entry(name=name, kind="file", size=info.size, etag=child_digest)
                )
        return out

    def exists(self, path: str) -> bool:
        return self._try_walk(path) is not None

    def is_dir(self, path: str) -> bool:
        info = self._try_walk(path)
        return info is not None and info[0] == "dir"

    def stat(self, path: str) -> Entry:
        path = normalize_path(path)
        if path == "/":
            return Entry(name="/", kind="dir")
        kind, digest = self._walk(path)
        _, base = parent_and_base(path)
        return Entry(name=base, kind=kind, etag=digest if kind == "file" else "")
