"""OpenStack Swift: Consistent Hash + a per-account file-path DB.

The paper's primary single-cloud comparator (§2, Figure 3).  Swift
keeps everything the plain CH layout keeps, *plus* one row per object
in an SQLite-style container DB so LIST and COPY no longer need the
O(N) key-space scan:

* LIST becomes a *delimiter listing*: one marker query -- one B-tree
  descent plus one network hop to the container server -- per direct
  child, i.e. O(m · log N).  The queries are inherently serial (each
  marker depends on the previous result), which is why Swift trails
  H2Cloud's parallel O(m) HEADs in Figures 9-10.
* COPY/MOVE/RMDIR enumerate members with a single range scan,
  O(log N + n), then pay per-member object work: O(n + log N).
* file access and MKDIR stay O(1) in object ops (one extra DB row
  write), which is why Swift wins Figures 12-13.

Scalability is "Limited" (Table 1): the DB lives on one storage node
per account and every metadata mutation funnels through it.
"""

from __future__ import annotations

from ..core.middleware import Entry
from ..core.namespace import normalize_path, parent_and_base
from ..simcloud.cluster import SwiftCluster
from ..simcloud.container_db import ContainerDB
from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    NotADirectory,
    PathNotFound,
)
from .base import TableRow
from .consistent_hash import ConsistentHashFS


class SwiftFS(ConsistentHashFS):
    """CH with a file-path DB: the OpenStack Swift baseline."""

    name = "swift"
    table_row = TableRow(
        architecture="Single Cloud",
        scalability="Limited",
        file_access="O(1)",
        mkdir="O(1)",
        rmdir_move="O(n)",
        list_="O(m·logN)",
        copy="O(n+logN)",
    )

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        super().__init__(cluster, account)
        latency = cluster.latency
        self.db = ContainerDB(
            latency,
            cluster.clock,
            ledger=cluster.store.ledger,
            query_overhead_us=latency.request_overhead_us + latency.lan_rtt_us,
        )

    # ------------------------------------------------------------------
    # DB row helpers (paths are stored account-relative)
    # ------------------------------------------------------------------
    def _row_meta(self, size: int, etag: str = "", dir_marker: bool = False):
        meta = {"size": size, "etag": etag}
        if dir_marker:
            meta["dir_marker"] = True
        return meta

    # ------------------------------------------------------------------
    # O(1) ops gain a DB row write; probes go through the DB
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        super().mkdir(path)
        self.db.insert(normalize_path(path) + "/", self._row_meta(0, dir_marker=True))

    def write(self, path: str, data: bytes) -> None:
        super().write(path, data)
        path = normalize_path(path)
        info = self.store.head(self._file_key(path))
        self.db.insert(path, self._row_meta(info.size, info.etag))

    def delete(self, path: str) -> None:
        super().delete(path)
        self.db.delete(normalize_path(path))

    # ------------------------------------------------------------------
    # member discovery: range scan instead of key-space scan
    # ------------------------------------------------------------------
    def _members(self, path: str) -> list[str]:
        """O(log N + n) subtree row scan (Figure 3's binary search)."""
        prefix = normalize_path(path).rstrip("/") + "/"
        key_prefix = f"ch:{self.account}:"
        members = []
        for row in self.db.list_subtree(prefix):
            if row.meta.get("dir_marker"):
                members.append(key_prefix + row.path[:-1] + "/")
            else:
                members.append(key_prefix + row.path)
        return members

    def listdir(self, path: str = "/", detailed: bool = False) -> list:
        """Swift delimiter listing: serial marker queries, O(m · log N).

        The DB rows carry size/etag, so even a detailed listing needs
        no object HEADs -- but each child costs a full (remote) B-tree
        descent and the queries cannot be parallelised.
        """
        path = normalize_path(path)
        if path != "/":
            self._require_parent(path)
            if self.store.exists(self._file_key(path)):
                raise NotADirectory(path)
            if not self.store.exists(self._dir_key(path)):
                raise PathNotFound(path)
        prefix = path.rstrip("/") + "/" if path != "/" else "/"
        entries = []
        for item in self.db.list_dir(prefix):
            if item.is_dir:
                entries.append(Entry(name=item.name.rstrip("/"), kind="dir"))
            else:
                entries.append(
                    Entry(
                        name=item.name,
                        kind="file",
                        size=int(item.meta.get("size", 0)),
                        etag=str(item.meta.get("etag", "")),
                    )
                )
        if detailed:
            return entries
        return [e.name for e in entries]

    # ------------------------------------------------------------------
    # directory mutations: member work + row maintenance
    # ------------------------------------------------------------------
    def rmdir(self, path: str, recursive: bool = True) -> None:
        path = normalize_path(path)
        if path == "/":
            raise InvalidPath(path, "cannot remove the root")
        self._require_parent(path)
        if self.store.exists(self._file_key(path)):
            raise NotADirectory(path)
        if not self.store.exists(self._dir_key(path)):
            raise PathNotFound(path)
        rows = self.db.list_subtree(path + "/")
        if not recursive and rows:
            raise DirectoryNotEmpty(path)
        lanes = self.store.latency.data_concurrency
        key_prefix = f"ch:{self.account}:"

        def drop(row):
            key = key_prefix + (row.path[:-1] + "/" if row.meta.get("dir_marker") else row.path)
            self.store.delete(key, missing_ok=True)

        self.store.parallel([lambda r=r: drop(r) for r in rows], lanes=lanes)
        for row in rows:
            self.db.delete(row.path)
        self.store.delete(self._dir_key(path), missing_ok=True)
        self.db.delete(path + "/")

    def move(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        self._require_parent(src)
        src_is_dir = self.store.exists(self._dir_key(src))
        src_is_file = self.store.exists(self._file_key(src))
        if not src_is_dir and not src_is_file:
            raise PathNotFound(src)
        self._require_parent(dst)
        self._require_absent(dst)
        self._guard_move(src, dst, src_is_dir)
        if src_is_file:
            self.store.copy(self._file_key(src), self._file_key(dst))
            self.store.delete(self._file_key(src))
            meta = self.db.get(src) or self._row_meta(0)
            self.db.delete(src)
            self.db.insert(dst, meta)
            return
        rows = self.db.list_subtree(src + "/")
        lanes = self.store.latency.data_concurrency
        key_prefix = f"ch:{self.account}:"

        def relocate(row):
            new_path = dst + row.path[len(src):]
            if row.meta.get("dir_marker"):
                old_key = key_prefix + row.path[:-1] + "/"
                new_key = key_prefix + new_path[:-1] + "/"
            else:
                old_key = key_prefix + row.path
                new_key = key_prefix + new_path
            self.store.copy(old_key, new_key)
            self.store.delete(old_key)

        self.store.parallel([lambda r=r: relocate(r) for r in rows], lanes=lanes)
        for row in rows:
            self.db.delete(row.path)
            self.db.insert(dst + row.path[len(src):], row.meta)
        self.store.put(self._dir_key(dst), b"", meta={"dir": "1"})
        self.store.delete(self._dir_key(src), missing_ok=True)
        self.db.delete(src + "/")
        self.db.insert(dst + "/", self._row_meta(0, dir_marker=True))

    def copy(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src != "/":
            self._require_parent(src)
            if not self.exists(src):
                raise PathNotFound(src)
        self._require_parent(dst)
        self._require_absent(dst)
        if self.store.exists(self._file_key(src)):
            self.store.copy(self._file_key(src), self._file_key(dst))
            meta = self.db.get(src) or self._row_meta(0)
            self.db.insert(dst, meta)
            return
        if src == "/":
            raise InvalidPath(src, "cannot copy the root onto a child")
        rows = self.db.list_subtree(src + "/")
        lanes = self.store.latency.data_concurrency
        key_prefix = f"ch:{self.account}:"

        def duplicate(row):
            new_path = dst + row.path[len(src):]
            if row.meta.get("dir_marker"):
                self.store.copy(
                    key_prefix + row.path[:-1] + "/",
                    key_prefix + new_path[:-1] + "/",
                )
            else:
                self.store.copy(key_prefix + row.path, key_prefix + new_path)

        self.store.parallel([lambda r=r: duplicate(r) for r in rows], lanes=lanes)
        for row in rows:
            self.db.insert(dst + row.path[len(src):], row.meta)
        self.store.put(self._dir_key(dst), b"", meta={"dir": "1"})
        self.db.insert(dst + "/", self._row_meta(0, dir_marker=True))

    def check_consistency(self) -> None:
        """Audit: every DB row has its object and vice versa (tests)."""
        self.db.check_invariants()
        key_prefix = f"ch:{self.account}:"
        names = {n for n in self.store.names() if n.startswith(key_prefix)}
        for row in self.db.all_rows():
            if row.meta.get("dir_marker"):
                key = key_prefix + row.path[:-1] + "/"
            else:
                key = key_prefix + row.path
            assert key in names, f"DB row {row.path!r} has no object"
