"""Dynamic Partition: Ceph/Panasas-style metadata, and the Dropbox model.

Multiple index servers share the directory tree; a placement map
assigns each directory to a server, new directories co-locate with
their parent (so most resolutions stay on one server -- the origin of
Dropbox's "constant with fluctuations" file-access times in Fig 13),
and :meth:`DynamicPartitionFS.rebalance` migrates the busiest
subtrees to the coldest server, off the client path.

:class:`DropboxLikeFS` is the same data structure wearing the latency
profile the paper measured on Dropbox (§5.3): per-request service cost
around 80 ms and replicated commits around 80 ms, landing MKDIR in the
150-200 ms band, MOVE/RMDIR flat in n, LIST within a whisker of
H2Cloud, and file access roughly constant and above H2's 61 ms
average.  The paper infers Dropbox uses DP precisely because its
measurements match this family's complexity profile.
"""

from __future__ import annotations

from ..simcloud.cluster import SwiftCluster
from .base import TableRow
from .index_server import IndexProfile
from .indexed_fs import ROOT_ID, IndexedFS


class DynamicPartitionFS(IndexedFS):
    """Two clouds: a dynamically partitioned metadata tier + object cloud."""

    name = "dynamic-partition"
    profile = IndexProfile.ceph_mds()
    table_row = TableRow(
        architecture="Two Clouds",
        scalability="Yes",
        file_access="O(d)",
        mkdir="O(1)",
        rmdir_move="O(1)",
        list_="O(m)",
        copy="O(n)",
    )

    def __init__(
        self,
        cluster: SwiftCluster,
        account: str = "user",
        index_servers: int = 4,
        rebalance_every: int = 256,
    ):
        self.rebalance_every = rebalance_every
        super().__init__(cluster, account, index_servers=index_servers)

    # ------------------------------------------------------------------
    # placement: inherit the parent's server; rebalance fixes hot spots
    # ------------------------------------------------------------------
    def _initial_server(self, parent_id, path: str) -> int:
        if parent_id is None:
            return 0
        return self.table.placement_of(parent_id)

    def _mutation_overhead(self) -> None:
        if self.rebalance_every and self.mutations and (
            self.mutations % self.rebalance_every == 0
        ):
            self.background(self.rebalance)

    # ------------------------------------------------------------------
    # load balancing
    # ------------------------------------------------------------------
    def rebalance(self) -> int:
        """Migrate directories from the fullest to the emptiest server.

        A deliberately simple greedy policy (Ceph's is fancier): move
        directory tables one by one until the spread is within 2x.
        Returns the number of directories migrated.
        """
        moved = 0
        for _ in range(1024):  # safety bound
            counts = self.table.dirs_by_server()
            hot = max(counts, key=counts.get)
            cold = min(counts, key=counts.get)
            if counts[hot] <= 2 * max(1, counts[cold]):
                break
            candidates = [
                d for d in list(self.table.servers[hot].tables)
                if d != ROOT_ID and self.table.placement_of(d) == hot
            ]
            if not candidates:
                break
            victim = candidates[0]
            table = self.table.servers[hot].export_dir(victim)
            self.table.servers[cold].import_dir(victim, table)
            self.table.place(victim, cold)
            self.clock.advance(
                self.profile.hop_rtt_us
                + self.profile.op_us * max(1, len(table))
            )
            moved += 1
        return moved

    def spread(self) -> float:
        """max/mean directories per server (the DP scalability story)."""
        counts = list(self.table.dirs_by_server().values())
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


class DropboxLikeFS(DynamicPartitionFS):
    """DP wearing the paper's measured Dropbox latency profile."""

    name = "dropbox"
    profile = IndexProfile.dropbox()

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        super().__init__(cluster, account, index_servers=8)
