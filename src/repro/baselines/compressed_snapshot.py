"""Compressed Snapshots: the Cumulus baseline (paper §2, Figure 1a).

Cumulus [Vrable et al. 2009] backs a filesystem up to an object store
by packing file contents into TAR-like *segments* and flattening the
directory tree into a linear *metadata log*.  We maintain (not just
back up) a filesystem on that layout, which is exactly what exposes
its weakness:

* the metadata log is an append-only chain of log-chunk objects; the
  *current* state of any path is whatever the latest relevant entry
  says, so **every read-side operation must scan the whole log**:
  file access, LIST, and the existence checks inside RMDIR/MOVE/COPY
  are all O(N) (Table 1);
* appends are cheap -- MKDIR and WRITE are O(1) amortised (read-modify-
  write of the tail chunk, new segment every ~4 MB);
* RMDIR appends a single subtree tombstone, MOVE re-points entries at
  the same segment slices -- but both must first scan to discover the
  members, keeping them O(N).

:meth:`CompressedSnapshotFS.compact` is the segment-cleaning pass a
real Cumulus deployment runs to shed superseded entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.middleware import Entry
from ..core.namespace import normalize_path, parent_and_base, split_path
from ..simcloud.cluster import SwiftCluster
from ..simcloud.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    ObjectNotFound,
    PathNotFound,
)
from .base import FilesystemAPI, TableRow

LOG_CHUNK_ENTRIES = 128  # entries per metadata-log object
SEGMENT_TARGET_BYTES = 4 * 1024 * 1024  # Cumulus packs ~4 MB segments


@dataclass(frozen=True)
class LogEntry:
    """One line of the metadata log."""

    op: str  # "file" | "dir" | "del" | "deldir"
    path: str
    segment: int = -1
    offset: int = 0
    length: int = 0

    def to_line(self) -> str:
        from ..core.formatter import escape

        return f"{self.op}|{escape(self.path)}|{self.segment}|{self.offset}|{self.length}"

    @classmethod
    def from_line(cls, line: str) -> "LogEntry":
        from ..core.formatter import unescape

        op, path, segment, offset, length = line.split("|")
        return cls(op, unescape(path), int(segment), int(offset), int(length))


class CompressedSnapshotFS(FilesystemAPI):
    """A filesystem maintained as a Cumulus-style compressed snapshot."""

    name = "compressed-snapshot"
    table_row = TableRow(
        architecture="Single Cloud",
        scalability="Yes",
        file_access="O(N)",
        mkdir="O(1)",
        rmdir_move="O(N)",
        list_="O(N)",
        copy="O(N)",
    )

    def __init__(self, cluster: SwiftCluster, account: str = "user"):
        super().__init__(cluster, account)
        self._log_chunks = 0  # number of sealed+tail chunk objects
        self._tail_entries = 0  # entries in the tail chunk
        self._segments = 0
        self._segment_used = 0

    # ------------------------------------------------------------------
    # object names
    # ------------------------------------------------------------------
    def _log_key(self, i: int) -> str:
        return f"cumulus:{self.account}:log:{i:06d}"

    def _seg_key(self, i: int) -> str:
        return f"cumulus:{self.account}:seg:{i:06d}"

    # ------------------------------------------------------------------
    # the metadata log
    # ------------------------------------------------------------------
    def _append(self, entry: LogEntry) -> None:
        """O(1) amortised: read-modify-write of the tail log chunk."""
        if self._log_chunks == 0 or self._tail_entries >= LOG_CHUNK_ENTRIES:
            self._log_chunks += 1
            self._tail_entries = 0
            data = b""
        else:
            data = self.store.get(self._log_key(self._log_chunks - 1)).data
        data += (entry.to_line() + "\n").encode("ascii")
        self.store.put(self._log_key(self._log_chunks - 1), data)
        self._tail_entries += 1

    def _scan(self) -> dict[str, LogEntry]:
        """Replay the whole metadata log: the O(N) full scan.

        Returns the live view {path: newest entry}.  Tombstones ("del")
        and subtree tombstones ("deldir") erase earlier entries; later
        entries may resurrect paths.
        """
        live: dict[str, LogEntry] = {}
        for i in range(self._log_chunks):
            data = self.store.get(self._log_key(i)).data
            lines = data.decode("ascii").splitlines()
            # Parsing and replaying each entry is real per-row work on
            # top of the GET: this is what makes the scan O(N) even
            # while the chunks are small enough to transfer quickly.
            self.clock.advance(len(lines) * self.cluster.latency.db_row_us)
            for line in lines:
                entry = LogEntry.from_line(line)
                if entry.op == "del":
                    live.pop(entry.path, None)
                elif entry.op == "deldir":
                    prefix = entry.path.rstrip("/") + "/"
                    live = {
                        p: e
                        for p, e in live.items()
                        if p != entry.path and not p.startswith(prefix)
                    }
                else:
                    live[entry.path] = entry
        return live

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------
    def _pack(self, data: bytes) -> tuple[int, int]:
        """Append content to the open segment; returns (segment, offset)."""
        if self._segments == 0 or self._segment_used + len(data) > SEGMENT_TARGET_BYTES:
            self._segments += 1
            self._segment_used = 0
            current = b""
        else:
            current = self.store.get(self._seg_key(self._segments - 1)).data
        offset = len(current)
        self.store.put(self._seg_key(self._segments - 1), current + data)
        self._segment_used = offset + len(data)
        return self._segments - 1, offset

    # ------------------------------------------------------------------
    # shared resolution on a scanned view
    # ------------------------------------------------------------------
    @staticmethod
    def _check_parent(live: dict[str, LogEntry], path: str) -> None:
        probe = ""
        for component in split_path(path)[:-1]:
            probe += "/" + component
            entry = live.get(probe)
            if entry is None:
                raise PathNotFound(probe)
            if entry.op != "dir":
                raise NotADirectory(probe)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        path = normalize_path(path)
        if path == "/":
            raise AlreadyExists(path)
        live = self._scan()
        self._check_parent(live, path)
        if path in live:
            raise AlreadyExists(path)
        self._append(LogEntry("dir", path))

    def mkdir_unchecked(self, path: str) -> None:
        """The Table-1 O(1) MKDIR: a blind log append.

        Cumulus is a backup tool -- the writer already knows the tree,
        so snapshot construction appends without scanning.  The checked
        :meth:`mkdir` above adds POSIX error semantics at O(N) scan
        cost; the complexity benchmark measures this append path.
        """
        self._append(LogEntry("dir", normalize_path(path)))

    def write(self, path: str, data: bytes) -> None:
        path = normalize_path(path)
        live = self._scan()
        self._check_parent(live, path)
        existing = live.get(path)
        if existing is not None and existing.op == "dir":
            raise IsADirectory(path)
        segment, offset = self._pack(data)
        self._append(LogEntry("file", path, segment, offset, len(data)))

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        live = self._scan()
        self._check_parent(live, path)
        entry = live.get(path)
        if entry is None:
            raise PathNotFound(path)
        if entry.op == "dir":
            raise IsADirectory(path)
        segment = self.store.get(self._seg_key(entry.segment)).data
        return segment[entry.offset : entry.offset + entry.length]

    def delete(self, path: str) -> None:
        path = normalize_path(path)
        live = self._scan()
        self._check_parent(live, path)
        entry = live.get(path)
        if entry is None:
            raise PathNotFound(path)
        if entry.op == "dir":
            raise IsADirectory(path)
        self._append(LogEntry("del", path))

    def rmdir(self, path: str, recursive: bool = True) -> None:
        path = normalize_path(path)
        if path == "/":
            raise InvalidPath(path, "cannot remove the root")
        live = self._scan()
        self._check_parent(live, path)
        entry = live.get(path)
        if entry is None:
            raise PathNotFound(path)
        if entry.op != "dir":
            raise NotADirectory(path)
        prefix = path + "/"
        if not recursive and any(p.startswith(prefix) for p in live):
            raise DirectoryNotEmpty(path)
        self._append(LogEntry("deldir", path))

    def move(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise InvalidPath(src, "cannot move the root")
        live = self._scan()
        self._check_parent(live, src)
        src_entry = live.get(src)
        if src_entry is None:
            raise PathNotFound(src)
        self._check_parent(live, dst)
        if dst in live:
            raise AlreadyExists(dst)
        self._guard_move(src, dst, src_entry.op == "dir")
        # Re-point entries at the same segment slices: metadata-only.
        self._append(LogEntry("deldir" if src_entry.op == "dir" else "del", src))
        for path, entry in sorted(live.items()):
            if path == src or (src_entry.op == "dir" and path.startswith(src + "/")):
                new_path = dst + path[len(src):]
                self._append(
                    LogEntry(entry.op, new_path, entry.segment, entry.offset, entry.length)
                )

    def copy(self, src: str, dst: str) -> None:
        src, dst = normalize_path(src), normalize_path(dst)
        live = self._scan()
        if src != "/":
            self._check_parent(live, src)
            if src not in live:
                raise PathNotFound(src)
        self._check_parent(live, dst)
        if dst in live:
            raise AlreadyExists(dst)
        src_entry = live.get(src)
        if src_entry is not None and src_entry.op == "file":
            self._append(
                LogEntry("file", dst, src_entry.segment, src_entry.offset, src_entry.length)
            )
            return
        if src == "/":
            raise InvalidPath(src, "cannot copy the root onto a child")
        for path, entry in sorted(live.items()):
            if path == src or path.startswith(src + "/"):
                new_path = dst + path[len(src):]
                self._append(
                    LogEntry(entry.op, new_path, entry.segment, entry.offset, entry.length)
                )

    def listdir(self, path: str = "/", detailed: bool = False) -> list:
        path = normalize_path(path)
        live = self._scan()
        if path != "/":
            self._check_parent(live, path)
            entry = live.get(path)
            if entry is None:
                raise PathNotFound(path)
            if entry.op != "dir":
                raise NotADirectory(path)
        prefix = path.rstrip("/") + "/"
        children: dict[str, LogEntry | None] = {}
        for p, entry in live.items():
            if not p.startswith(prefix) or p == path:
                continue
            head = p[len(prefix):].split("/", 1)[0]
            if "/" in p[len(prefix):]:
                children.setdefault(head, None)  # implied directory
            else:
                children[head] = entry
        names = sorted(children)
        if not detailed:
            return names
        out = []
        for name in names:
            entry = children[name]
            if entry is None or entry.op == "dir":
                out.append(Entry(name=name, kind="dir"))
            else:
                out.append(Entry(name=name, kind="file", size=entry.length))
        return out

    def exists(self, path: str) -> bool:
        path = normalize_path(path)
        if path == "/":
            return True
        return path in self._scan()

    def is_dir(self, path: str) -> bool:
        path = normalize_path(path)
        if path == "/":
            return True
        entry = self._scan().get(path)
        return entry is not None and entry.op == "dir"

    # ------------------------------------------------------------------
    # segment cleaning
    # ------------------------------------------------------------------
    def compact(self) -> tuple[int, int]:
        """Rewrite the snapshot without dead entries/bytes.

        Returns (log chunks before, log chunks after).  This is
        Cumulus's cleaner: it bounds the O(N) scans after heavy churn.
        """
        live = self._scan()
        before = self._log_chunks
        # Stage live content first: new segments reuse the key range.
        contents: dict[str, bytes] = {}
        for path, entry in live.items():
            if entry.op == "file":
                segment = self.store.get(self._seg_key(entry.segment)).data
                contents[path] = segment[entry.offset : entry.offset + entry.length]
        old_log, old_segments = self._log_chunks, self._segments
        for i in range(old_log):
            self.store.delete(self._log_key(i), missing_ok=True)
        for i in range(old_segments):
            self.store.delete(self._seg_key(i), missing_ok=True)
        self._log_chunks = 0
        self._tail_entries = 0
        self._segments = 0
        self._segment_used = 0
        for path in sorted(live):
            entry = live[path]
            if entry.op == "dir":
                self._append(LogEntry("dir", path))
            else:
                segment, offset = self._pack(contents[path])
                self._append(
                    LogEntry("file", path, segment, offset, len(contents[path]))
                )
        return before, self._log_chunks
