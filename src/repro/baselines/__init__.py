"""`repro.baselines` -- every comparison system from Table 1.

Eight data structures, all speaking the same filesystem API as
:class:`repro.core.H2CloudFS`, all costed against the same simulated
substrate.  ``TABLE1_ROWS`` collects the paper's claimed complexity
classes for the Table-1 reproduction benchmark; ``make_system``
constructs any system (H2Cloud included) by name on a given cluster.
"""

from __future__ import annotations

from ..core.fs import H2CloudFS
from ..simcloud.cluster import SwiftCluster
from .base import FilesystemAPI, TableRow
from .cas import CASFS
from .compressed_snapshot import CompressedSnapshotFS
from .consistent_hash import ConsistentHashFS
from .dynamic_partition import DropboxLikeFS, DynamicPartitionFS
from .index_server import DirTable, EntryRec, IndexProfile, IndexServer
from .indexed_fs import IndexedFS
from .shared_disk import SharedDiskDPFS
from .single_index import SingleIndexFS
from .static_partition import StaticPartitionFS
from .swift import SwiftFS

H2_TABLE_ROW = TableRow(
    architecture="Single Cloud",
    scalability="Yes",
    file_access="O(1) or O(d)",
    mkdir="O(1)",
    rmdir_move="O(1)",
    list_="O(1) or O(m)",
    copy="O(n)",
)

#: name -> (constructor, Table-1 row), ordered as in the paper's table
TABLE1_SYSTEMS: dict[str, tuple[type, TableRow]] = {
    "compressed-snapshot": (CompressedSnapshotFS, CompressedSnapshotFS.table_row),
    "cas": (CASFS, CASFS.table_row),
    "consistent-hash": (ConsistentHashFS, ConsistentHashFS.table_row),
    "swift": (SwiftFS, SwiftFS.table_row),
    "single-index": (SingleIndexFS, SingleIndexFS.table_row),
    "static-partition": (StaticPartitionFS, StaticPartitionFS.table_row),
    "dynamic-partition": (DynamicPartitionFS, DynamicPartitionFS.table_row),
    "shared-disk-dp": (SharedDiskDPFS, SharedDiskDPFS.table_row),
    "h2cloud": (H2CloudFS, H2_TABLE_ROW),
}


def make_system(name: str, cluster: SwiftCluster | None = None, account: str = "user"):
    """Build any Table-1 system (H2Cloud included) on a fresh cluster."""
    if name == "dropbox":
        ctor = DropboxLikeFS
    else:
        try:
            ctor = TABLE1_SYSTEMS[name][0]
        except KeyError:
            raise KeyError(
                f"unknown system {name!r}; choose from "
                f"{sorted(TABLE1_SYSTEMS) + ['dropbox']}"
            ) from None
    return ctor(cluster or SwiftCluster.rack_scale(), account=account)


__all__ = [
    "CASFS",
    "CompressedSnapshotFS",
    "ConsistentHashFS",
    "DirTable",
    "DropboxLikeFS",
    "DynamicPartitionFS",
    "EntryRec",
    "FilesystemAPI",
    "H2_TABLE_ROW",
    "IndexProfile",
    "IndexServer",
    "IndexedFS",
    "SharedDiskDPFS",
    "SingleIndexFS",
    "StaticPartitionFS",
    "SwiftFS",
    "TABLE1_SYSTEMS",
    "TableRow",
    "make_system",
]
