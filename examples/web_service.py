#!/usr/bin/env python
"""H2Cloud as a web service: the paper's deployment shape (§4.1-4.3).

Clients talk HTTP to an H2Middleware; this example drives the web API
the way a sync client would -- create an account, upload a tree, fetch
the namespace-decorated relative path from a HEAD and use the quick
O(1) route, reorganize with Directory APIs -- then prints the
middleware's monitoring snapshot.

Run:  python examples/web_service.py
"""

from repro.core import H2Middleware, H2WebAPI, Request
from repro.simcloud import SwiftCluster


def show(api: H2WebAPI, method: str, path: str, body: bytes = b"") -> None:
    response = api.handle(Request(method, path, body))
    summary = response.body.decode("utf-8", "replace").strip().replace("\n", ", ")
    print(f"  {method:6s} {path:48s} -> {response.status} {response.reason}"
          + (f"  [{summary}]" if summary and len(summary) < 60 else ""))


def main() -> None:
    cluster = SwiftCluster.rack_scale()
    middleware = H2Middleware(node_id=1, store=cluster.store)
    api = H2WebAPI(middleware)
    # Every operation below lands in middleware.monitor automatically:
    # the Inbound API is instrumented, no explicit timing wrappers.
    monitor = middleware.monitor

    print("== account APIs ==")
    show(api, "PUT", "/v1/alice")
    show(api, "PUT", "/v1/alice")  # 409: already exists
    show(api, "HEAD", "/v1/alice")

    print("\n== file content APIs ==")
    show(api, "PUT", "/v1/alice/docs?dir=1")
    api.put("/v1/alice/docs/report.txt", b"Q3 numbers")
    show(api, "GET", "/v1/alice/docs/report.txt")
    head = api.head("/v1/alice/docs/report.txt")
    rel = head.headers["X-Relative-Path"]
    print(f"  (HEAD advertises the quick path: {rel})")
    show(api, "GET", f"/v1/~rel/{rel}")

    print("\n== directory APIs ==")
    show(api, "GET", "/v1/alice/docs?list=detail")
    api.post("/v1/alice/docs?op=move&dst=/archive")
    show(api, "GET", "/v1/alice?list=names")
    show(api, "DELETE", "/v1/alice/archive?dir=1")
    show(api, "GET", "/v1/alice/archive?list=names")  # 404

    print("\n== middleware monitoring snapshot ==")
    for key, value in sorted(monitor.snapshot().items()):
        if value:
            print(f"  {key:40s} {value:,.2f}")


if __name__ == "__main__":
    main()
