#!/usr/bin/env python
"""Multi-tenant deployment: the paper's §5.1 user corpus, §5.3 census.

Hosts a (scaled-down) population of light and heavy users on one
simulated rack, replays a realistic operation trace for a few of them,
and takes the Figures 14-15 storage census: how many extra objects do
NameRings cost, and how many extra bytes?

Run:  python examples/multi_tenant_census.py
"""

from repro.baselines import SwiftFS
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster
from repro.workloads import (
    TraceGenerator,
    build_corpus,
    corpus_stats,
    populate,
    replay,
)

N_USERS = 10


def host_corpus(system_ctor, users):
    cluster = SwiftCluster.rack_scale()
    filesystems = {}
    for user in users:
        fs = system_ctor(cluster, account=user.account)
        populate(fs, user.tree(), sparse=True)
        fs.pump()
        filesystems[user.account] = fs
    return cluster, filesystems


def main() -> None:
    users = build_corpus(n_users=N_USERS, heavy_fraction=0.3, seed=42)
    stats = corpus_stats(users)
    print("== corpus ==")
    print(f"  users: {stats['users']} ({stats['heavy_users']} heavy)")
    print(f"  files: {stats['total_files']}, dirs: {stats['total_dirs']}")
    print(f"  deepest path: {stats['max_depth']} levels")
    print(f"  logical data: {stats['total_bytes'] / 2**30:.2f} GiB")

    print("\n== hosting on H2Cloud and on OpenStack Swift ==")
    h2_cluster, h2_fss = host_corpus(H2CloudFS, users)
    swift_cluster, _ = host_corpus(SwiftFS, users)

    h2_count, h2_bytes = h2_cluster.store.census()
    sw_count, sw_bytes = swift_cluster.store.census()
    print(f"  {'':18s}{'objects':>12s}{'logical MB':>14s}")
    print(f"  {'h2cloud':18s}{h2_count:12d}{h2_bytes / 2**20:14.1f}")
    print(f"  {'swift':18s}{sw_count:12d}{sw_bytes / 2**20:14.1f}")
    print(
        f"  -> H2Cloud stores {h2_count / sw_count:.2f}x the objects "
        f"(Fig 14) but only {(h2_bytes / sw_bytes - 1) * 100:.2f}% more "
        f"bytes (Fig 15)."
    )

    print("\n== replaying user activity on H2Cloud ==")
    user = users[0]
    fs = h2_fss[user.account]
    tree = user.tree()
    ops = TraceGenerator(seed=9).generate(tree, 500)
    trace_stats = replay(fs, ops)
    print(f"  {user.account} ({user.kind}): {trace_stats.total_ops} ops")
    print(f"  {'op':10s}{'count':>8s}{'mean ms':>10s}")
    for kind in sorted(trace_stats.timings_us):
        print(
            f"  {kind:10s}{trace_stats.count(kind):8d}"
            f"{trace_stats.mean_us(kind) / 1000:10.1f}"
        )

    print("\n== per-node balance on the consistent-hash ring ==")
    for node_id, (replicas, used) in h2_cluster.storage_stats().items():
        print(f"  node {node_id}: {replicas:6d} replicas, {used / 2**20:9.1f} MB")
    print("done.")


if __name__ == "__main__":
    main()
