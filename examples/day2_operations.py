#!/usr/bin/env python
"""Day-2 operations: running H2Cloud after the demo is over.

The operational story behind the paper's reliability claims, told with
the repo's tooling:

1. fsck the object graph;
2. scale the rack out by one storage node and rebalance replicas;
3. lose a middleware with unmerged patches -- recover them from the
   durable patch objects alone;
4. back the account up to a Cumulus snapshot and verify the restore;
5. garbage-collect and re-check.

Run:  python examples/day2_operations.py
"""

from repro.baselines import CompressedSnapshotFS
from repro.core import H2CloudFS, H2Config, H2Middleware
from repro.simcloud import SwiftCluster
from repro.tools import H2Fsck, migrate, verify_equivalent
from repro.workloads import TreeSpec, generate, populate


def main() -> None:
    cluster = SwiftCluster.rack_scale()
    fs = H2CloudFS(cluster, account="prod", config=H2Config(auto_merge=False))
    populate(fs, generate(TreeSpec(seed=8, target_files=120, max_depth=5)),
             sparse=False)
    fs.pump()

    print("== 1. fsck ==")
    print(" ", H2Fsck(fs.middlewares[0]).check().summary())

    print("\n== 2. scale out + rebalance ==")
    node = cluster.add_storage_node()
    degraded = sum(
        1 for name in cluster.store.names()
        if cluster.store.replica_health(name)[0] < 3
    )
    print(f"  node {node.node_id} joined; {degraded} objects under-replicated")
    written, dropped = cluster.store.rebalance()
    print(f"  replicator moved {written} replicas in, {dropped} stale out")
    print(f"  new node now holds {node.object_count} replicas")
    print(" ", H2Fsck(fs.middlewares[0]).check().summary())

    print("\n== 3. middleware crash with unmerged patches ==")
    fs.write("/fresh-report.txt", b"written moments before the crash")
    pending = sum(
        len(fd.chain) for fd in fs.middlewares[0].fd_cache.dirty_descriptors()
    )
    print(f"  middleware dies holding {pending} unmerged patch(es)")
    replacement = H2Middleware(node_id=99, store=cluster.store)
    recovered = replacement.merger.recover_orphaned_patches()
    print(f"  replacement middleware recovered {recovered} patches from the store")
    print(f"  read-back: {replacement.read_file('prod', '/fresh-report.txt')!r}")

    print("\n== 4. backup to a Cumulus snapshot, verify restore ==")
    # Frontends are stateless: attach a brand-new H2CloudFS to the same
    # cluster+account and it serves the existing tree.
    reattached = H2CloudFS(cluster, account="prod")
    backup = CompressedSnapshotFS(SwiftCluster.rack_scale(), account="vault")
    report = migrate(reattached, backup)
    print(f"  backed up {report.directories} dirs, {report.files} files, "
          f"{report.logical_bytes:,} B")
    restored = H2CloudFS(SwiftCluster.rack_scale(), account="restored")
    migrate(backup, restored)
    print(f"  restore verified: {verify_equivalent(backup, restored)}")

    print("\n== 5. GC + final fsck ==")
    fs.pump()
    gc_report = fs.gc()
    print(f"  gc swept {gc_report.swept} objects, "
          f"reclaimed {gc_report.reclaimed_bytes:,} B")
    print(" ", H2Fsck(fs.middlewares[0]).check().summary())
    print("done.")


if __name__ == "__main__":
    main()
