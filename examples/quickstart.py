#!/usr/bin/env python
"""Quickstart: a whole filesystem in one object storage cloud.

Launches H2Cloud on a simulated rack-scale object store, exercises the
POSIX-like API the paper evaluates, and prints the simulated cost of
each operation -- the same clock the benchmark figures are read from.

Run:  python examples/quickstart.py
"""

from repro.core import H2CloudFS


def timed(fs, label, thunk):
    result, cost_us = fs.clock.measure(thunk)
    print(f"  {label:46s} {cost_us / 1000:8.1f} ms")
    return result


def main() -> None:
    print("== H2Cloud quickstart ==")
    fs = H2CloudFS.launch(account="alice")

    print("\n-- building a small home directory --")
    timed(fs, "mkdir /home", lambda: fs.mkdir("/home"))
    timed(fs, "mkdir /home/ubuntu", lambda: fs.mkdir("/home/ubuntu"))
    timed(
        fs,
        "write /home/ubuntu/file1 (11 bytes)",
        lambda: fs.write("/home/ubuntu/file1", b"hello world"),
    )
    timed(fs, "write /home/ubuntu/notes.txt", lambda: fs.write("/home/ubuntu/notes.txt", b"todo"))

    print("\n-- reading back --")
    data = timed(fs, "read /home/ubuntu/file1 (full path, O(d))",
                 lambda: fs.read("/home/ubuntu/file1"))
    assert data == b"hello world"

    # The paper's quick access method: hash the namespace-decorated
    # relative path, one GET, O(1) whatever the depth.
    rel = fs.relative_path_of("/home/ubuntu/file1")
    print(f"  namespace-decorated relative path: {rel}")
    fs.drop_caches()
    timed(fs, "read via relative path (quick, O(1))", lambda: fs.read_relative(rel))

    print("\n-- directory operations are NameRing updates --")
    timed(fs, "listdir /home/ubuntu (names: 1 ring GET)",
          lambda: print("   ", fs.listdir("/home/ubuntu")))
    timed(fs, "rename /home/ubuntu -> /home/xenial",
          lambda: fs.rename("/home/ubuntu", "/home/xenial"))
    timed(fs, "copy /home -> /backup", lambda: fs.copy("/home", "/backup"))
    timed(fs, "rmdir /backup (fake deletion, O(1))", lambda: fs.rmdir("/backup"))

    print("\n-- everything lives in the flat object store --")
    count, nbytes = fs.store.census()
    print(f"  objects: {count}, logical bytes: {nbytes}")
    report = fs.gc()
    print(f"  gc: swept {report.swept} unreachable objects, "
          f"reclaimed {report.reclaimed_bytes} B, "
          f"compacted {report.compacted_rings} NameRings")
    print(f"\nsimulated wall clock consumed: {fs.clock.now_ms:.1f} ms")
    print("done.")


if __name__ == "__main__":
    main()
