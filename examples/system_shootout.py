#!/usr/bin/env python
"""Shootout: one workload, all nine Table-1 data structures.

Builds the same small filesystem on every system in the comparison
(including H2Cloud and the Dropbox-profile DP), replays the same
deterministic operation set, and prints a Table-1-shaped summary of
measured per-op costs.  A compact, runnable rendering of the paper's
§2 related-work argument.

Run:  python examples/system_shootout.py
"""

from repro.baselines import TABLE1_SYSTEMS, make_system
from repro.simcloud import SwiftCluster, payload_of

SYSTEMS = list(TABLE1_SYSTEMS) + ["dropbox"]
N_FILES = 200


def build_and_drill(name: str) -> dict[str, float]:
    fs = make_system(name, SwiftCluster.rack_scale())
    sparse = name not in ("compressed-snapshot", "cas")
    size = 1 << 20 if sparse else 256
    fs.mkdir("/work")
    fs.mkdir("/work/project")
    for i in range(N_FILES):
        path = f"/work/project/f{i:04d}.dat"
        fs.write(path, payload_of(size, tag=path, sparse=sparse))
    fs.pump()

    times: dict[str, float] = {}

    def timed(label, thunk):
        fs.pump()
        fs.drop_caches()
        _, cost = fs.clock.measure(thunk)
        times[label] = cost / 1000

    timed("access", lambda: fs.stat("/work/project/f0100.dat"))
    timed("mkdir", lambda: fs.mkdir("/work/new"))
    timed("list", lambda: fs.listdir("/work/project", detailed=True))
    timed("move", lambda: fs.move("/work/project", "/work/archive"))
    timed("copy", lambda: fs.copy("/work/archive", "/work/copy"))
    timed("rmdir", lambda: fs.rmdir("/work/copy"))
    return times


def fmt(ms: float) -> str:
    if ms >= 10_000:
        return f"{ms / 1000:7.1f}s"
    return f"{ms:6.0f}ms"


def main() -> None:
    print(f"== shootout: {N_FILES} x 1MB files in one directory ==\n")
    ops = ["access", "mkdir", "list", "move", "copy", "rmdir"]
    print(f"{'system':22s}" + "".join(f"{op:>9s}" for op in ops))
    for name in SYSTEMS:
        times = build_and_drill(name)
        print(f"{name:22s}" + "".join(fmt(times[op]) for op in ops))
    print(
        "\nReading the table against the paper's Table 1:\n"
        "  - compressed-snapshot & cas pay O(N) on mutations;\n"
        "  - consistent-hash & swift pay O(n) on move/rmdir;\n"
        "  - index-server systems and h2cloud keep directory ops flat;\n"
        "  - only h2cloud does it with a single cloud and no index tier."
    )


if __name__ == "__main__":
    main()
