#!/usr/bin/env python
"""Failure drill: why hosting the index *in* the object cloud matters.

The paper's motivation is index-cloud fragility (Dropbox's data-loss
incidents).  This drill shows the reproduction's failure machinery:

1. storage-node crashes ride on 3-way replication + repair;
2. the NameRing gossip protocol converges across middlewares even with
   60% message loss;
3. the CAP contrast: a shared-disk DP system refuses writes during a
   fabric partition, while H2Cloud (eventually consistent) keeps going;
4. the full fault-tolerance stack (docs/PROTOCOL.md section 9): a
   transient-fault storm masked by retries and circuit breakers, a
   degraded stale LIST during a total replica outage, and a repair
   sweep that leaves the cluster fsck-CLEAN again;
5. silent data corruption (docs/PROTOCOL.md section 10): bit-rot lands
   on two replicas of a hot directory's NameRing, verified reads fail
   over and heal it in passing, and the background scrubber catches
   the rot nobody read.

Run:  python examples/failure_drill.py
"""

from repro.baselines import SharedDiskDPFS
from repro.core import H2CloudFS, deployment_report
from repro.simcloud import FaultPlan, MessageLoss, ServiceUnavailable, SwiftCluster
from repro.tools import repair_and_verify


def drill_replication() -> None:
    print("== 1. storage-node failure ==")
    cluster = SwiftCluster.rack_scale()
    fs = H2CloudFS(cluster, account="ops")
    fs.mkdir("/logs")
    fs.write("/logs/audit.log", b"x" * 4096)

    victims = cluster.ring.nodes_for("f:" + fs.relative_path_of("/logs/audit.log"))
    print(f"  audit.log replicas on nodes {victims}")
    cluster.nodes[victims[0]].crash()
    cluster.nodes[victims[1]].crash()
    print("  crashed two of three replicas...")
    print(f"  read still works: {len(fs.read('/logs/audit.log'))} bytes")

    cluster.nodes[victims[0]].recover()
    cluster.nodes[victims[1]].recover()
    cluster.nodes[victims[2]].wipe()  # lose the third replica's disk
    fixed = cluster.store.repair()
    print(f"  disk replaced on node {victims[2]}; replicator healed {fixed} replicas")
    present, expected = cluster.store.replica_health(
        "f:" + fs.relative_path_of("/logs/audit.log")
    )
    print(f"  replica health: {present}/{expected}\n")


def drill_gossip() -> None:
    print("== 2. gossip convergence under 60% message loss ==")
    fs = H2CloudFS(
        SwiftCluster.rack_scale(),
        account="ops",
        middlewares=4,
        gossip_fanout=2,
        message_loss=MessageLoss(0.6, seed=13),
    )
    for i, mw in enumerate(fs.middlewares):
        mw.mkdir("ops", f"/from-node-{i + 1}")
    fs.network.converge()
    views = []
    for mw in fs.middlewares:
        entries = mw.list_dir("ops", "/")
        views.append([e.name for e in entries])
    print(f"  rumors sent {fs.network.rumors_sent}, "
          f"dropped {fs.network.loss.dropped}")
    identical = all(v == views[0] for v in views)
    print(f"  all 4 middlewares agree: {identical} -> {views[0]}\n")
    assert identical


def drill_cap() -> None:
    print("== 3. CAP: shared-disk DP vs H2Cloud during a partition ==")
    shared = SharedDiskDPFS(SwiftCluster.rack_scale(), account="ops")
    shared.mkdir("/data")
    shared.partition_fabric()
    try:
        shared.mkdir("/data/during-partition")
        print("  shared-disk DP accepted a write during partition (!?)")
    except ServiceUnavailable as exc:
        print(f"  shared-disk DP: {exc}")
    shared.heal_fabric()

    cluster = SwiftCluster.rack_scale()
    h2 = H2CloudFS(cluster, account="ops")
    victim = next(iter(cluster.nodes))
    cluster.nodes[victim].crash()
    h2.mkdir("/during-partition")  # quorum write: 2 of 3 replicas is enough
    print(f"  h2cloud: node {victim} down, mkdir succeeded "
          f"(eventual consistency keeps accepting writes)\n")


def drill_fault_tolerance() -> None:
    print("== 4. transient-fault storm, degraded reads, and a healed cluster ==")
    cluster = SwiftCluster.rack_scale()
    cluster.install_fault_plan(
        FaultPlan(seed=2026, io_error_rate=0.05, timeout_rate=0.02, slow_rate=0.03)
    )
    fs = H2CloudFS(cluster, account="ops")
    fs.makedirs("/srv/media")
    for i in range(25):
        fs.write(f"/srv/media/clip-{i:02d}", bytes([i]) * 4096)
    res = fs.store.resilience
    print(f"  storm masked: {res.retries} retries "
          f"({res.io_errors} io-errors, {res.timeouts} timeouts), "
          f"{sum(b.trips for b in fs.store.breakers.values())} breaker trips, "
          f"0 client-visible errors")

    # Total outage of /srv/media's NameRing replicas: LIST goes degraded.
    from repro.core.namespace import namering_key

    mw = fs.middlewares[0]
    ns = mw.stat("ops", "/srv/media").dir_ns
    victims = cluster.ring.nodes_for(namering_key(ns))
    for node_id in victims:
        cluster.nodes[node_id].crash()
    fd = mw.load_ring(ns, use_cache=False)  # every replica down -> stale serve
    print(f"  all {len(victims)} ring replicas down -> degraded LIST "
          f"still returns {len(fd.ring.live_names())} entries "
          f"(stale={fd.stale}, degraded serves={mw.degraded_serves})")

    # One node comes back with a blank disk; sweep it back to health.
    cluster.nodes[victims[0]].recover()
    cluster.nodes[victims[1]].recover()
    cluster.nodes[victims[2]].wipe()
    cluster.nodes[victims[2]].recover()
    report, fsck = repair_and_verify(fs, verbose=False)
    print(f"  sweep after recovery: {report.summary()}")
    print(f"  {fsck.summary()}")
    assert fsck.clean and not fsck.degraded_replicas
    print()


def drill_integrity() -> None:
    print("== 5. silent bit-rot, verified reads, and the scrubber ==")
    from repro.core.namespace import namering_key

    cluster = SwiftCluster.rack_scale()
    fs = H2CloudFS(cluster, account="ops")
    fs.makedirs("/hot")
    for i in range(8):
        fs.write(f"/hot/item-{i}", bytes([i + 1]) * 1024)
    fs.pump()

    mw = fs.middlewares[0]
    ring_key = namering_key(mw.stat("ops", "/hot").dir_ns)
    victims = cluster.ring.nodes_for(ring_key)
    # Bit-rot lands on two of the NameRing's three replicas; checksums
    # go stale silently -- nothing notices until somebody reads.
    cluster.failures.corrupt_at(10, victims[0], name=ring_key)
    cluster.failures.corrupt_at(10, victims[1], name=ring_key)
    cluster.clock.advance(20)
    cluster.failures.pump()
    print(f"  bit-rot injected on nodes {victims[:2]} "
          f"(NameRing of /hot, checksums now stale)")

    mw.fd_cache.drop_clean()  # force the LIST back to the store
    entries = fs.listdir("/hot")
    res = fs.store.resilience
    print(f"  verified LIST: {len(entries)} entries served correctly -- "
          f"{res.corrupt_replicas} corrupt replicas detected, "
          f"{res.read_repairs} read-repairs, "
          f"{fs.store.quarantined_replica_count} still quarantined")
    assert len(entries) == 8

    # Cold rot: nobody reads item-3, so only the scrubber can find it.
    cold_key = "f:" + fs.relative_path_of("/hot/item-3")
    cluster.failures.corrupt_at(30, cluster.ring.nodes_for(cold_key)[0],
                                name=cold_key, mode="truncate")
    cluster.clock.advance(20)
    cluster.failures.pump()
    report = fs.scrub()
    print(f"  {report.summary()}")
    assert fs.scrub().clean
    print()
    print(deployment_report(fs))
    print("done.")


if __name__ == "__main__":
    drill_replication()
    drill_gossip()
    drill_cap()
    drill_fault_tolerance()
    drill_integrity()
