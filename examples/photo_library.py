#!/usr/bin/env python
"""A cloud photo service: the paper's motivating application shape.

Dropbox-style services host users' hierarchical libraries on a flat
object cloud.  This example builds a photo library (albums = nested
directories, ~2 MB photos), then performs the management operations
users actually do -- rename an album, reorganize, list with details --
on H2Cloud *and* on OpenStack Swift, printing the side-by-side
simulated cost.  It is Figure 7/10 told as a user story.

Run:  python examples/photo_library.py
"""

from repro.baselines import SwiftFS
from repro.core import H2CloudFS
from repro.simcloud import SwiftCluster, payload_of

ALBUMS = {
    "/photos/2017/iceland": 120,
    "/photos/2017/weddings": 300,
    "/photos/2018/street": 80,
    "/photos/2018/macro-flowers": 45,
}
PHOTO_BYTES = 2 * 1024 * 1024


def build_library(fs) -> None:
    fs.mkdir("/photos")
    years = sorted({album.rsplit("/", 2)[0] + "/" + album.split("/")[2] for album in ALBUMS})
    for year in sorted({("/photos/" + a.split("/")[2]) for a in ALBUMS}):
        fs.mkdir(year)
    for album, count in ALBUMS.items():
        fs.mkdir(album)
        for i in range(count):
            path = f"{album}/IMG_{i:04d}.jpg"
            fs.write(path, payload_of(PHOTO_BYTES, tag=path))
    fs.pump()
    fs.drop_caches()


def drill(fs, name: str) -> dict[str, float]:
    times = {}

    def timed(label, thunk):
        _, cost = fs.clock.measure(thunk)
        times[label] = cost / 1000
        fs.pump()
        fs.drop_caches()

    timed("rename big album (300 photos)",
          lambda: fs.rename("/photos/2017/weddings", "/photos/2017/wedding-season"))
    timed("list album with details (120 photos)",
          lambda: fs.listdir("/photos/2017/iceland", detailed=True))
    timed("move album across years",
          lambda: fs.move("/photos/2018/street", "/photos/2017/street"))
    timed("open one photo (lookup, d=3)",
          lambda: fs.stat("/photos/2017/iceland/IMG_0000.jpg"))
    timed("delete an album (45 photos)",
          lambda: fs.rmdir("/photos/2018/macro-flowers"))
    return times


def main() -> None:
    print("== photo library management: H2Cloud vs OpenStack Swift ==\n")
    results = {}
    for name, ctor in (("h2cloud", H2CloudFS), ("swift", SwiftFS)):
        fs = ctor(SwiftCluster.rack_scale(), account="photosvc")
        print(f"building library on {name} "
              f"({sum(ALBUMS.values())} photos, {len(ALBUMS)} albums)...")
        build_library(fs)
        results[name] = drill(fs, name)

    print(f"\n{'operation':42s} {'H2Cloud':>12s} {'Swift':>12s}")
    for label in results["h2cloud"]:
        h2 = results["h2cloud"][label]
        sw = results["swift"][label]
        winner = "  <-- H2" if h2 < sw else ""
        print(f"{label:42s} {h2:10.1f}ms {sw:10.1f}ms{winner}")
    print(
        "\nDirectory-heavy management is where H2's NameRings pay off:\n"
        "Swift rewrites one object per photo on RENAME/MOVE/RMDIR, while\n"
        "H2Cloud submits O(1) NameRing patches. Single-photo access is\n"
        "faster on Swift (one full-path hash) -- exactly Fig 7/8/13."
    )


if __name__ == "__main__":
    main()
